// Package experiments regenerates the paper's evaluation artifacts:
// Figure 8 (WritersBlock events per kilo-store / uncacheable reads per
// kilo-load), Figure 9 (execution time and network traffic overhead of
// the WritersBlock protocol), Figure 10 (commit-stall breakdown and
// normalized execution time of out-of-order commit), and the auxiliary
// squash-elimination study. Each experiment returns stats tables whose
// rows correspond to the figure's bars/series.
//
// All experiments run on an Engine: the independent simulations of a
// figure fan out across a worker pool and duplicate (workload, config)
// combinations are memoized, while tables stay byte-identical to a
// sequential run. The package-level functions are conveniences that run
// on a fresh default engine; share one Engine across experiments to
// dedupe simulations between figures.
package experiments

import (
	"fmt"

	"wbsim/internal/core"
	"wbsim/internal/sim"
	"wbsim/internal/stats"
	"wbsim/internal/workload"
)

// Options control experiment runs.
type Options struct {
	Cores int
	Scale int // workload scale factor
	Seed  uint64
	// MaxCycles overrides the per-run cycle budget when > 0, so a hang
	// found by the chaos campaign reproduces quickly from the CLI.
	MaxCycles sim.Cycle
	// Shards runs each simulated machine on that many worker goroutines
	// (core.Config.Shards). Tables are identical at any setting; pair
	// with runner.ClampParallelForShards so the engine's fan-out times
	// Shards does not oversubscribe the host.
	Shards int
}

// DefaultOptions mirror the paper's 16-core runs.
func DefaultOptions() Options { return Options{Cores: 16, Scale: 2, Seed: 1} }

// Fig8 runs Engine.Fig8 on a fresh default engine.
func Fig8(opt Options) (*stats.Table, error) { return NewEngine(0).Fig8(opt) }

// Fig8 reproduces Figure 8: per benchmark and core class, write requests
// blocked per kilo-store (top graph) and uncacheable tear-off reads per
// kilo-load (bottom graph), measured under out-of-order commit with
// WritersBlock coherence.
func (e *Engine) Fig8(opt Options) (*stats.Table, error) {
	ws := workload.Evaluation()
	var jobs []simJob
	for _, w := range ws {
		for _, class := range core.Classes {
			jobs = append(jobs, simJob{
				label: fmt.Sprintf("fig8 %s/%s", w.Name, class),
				w:     w,
				cfg:   figConfig(class, core.OoOWB, opt),
				scale: opt.Scale,
			})
		}
	}
	results, err := e.run(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 8: WritersBlock events (OoO commit + WritersBlock)",
		"benchmark", "class", "blocked-writes/kstore", "uncacheable-reads/kload")
	i := 0
	for _, w := range ws {
		for _, class := range core.Classes {
			res := results[i]
			i++
			t.AddRow(w.Name, string(class),
				stats.PerMille(res.BlockedWrites, res.CommittedStores),
				stats.PerMille(res.UncacheableReads, res.CommittedLoads))
		}
	}
	return t, nil
}

// Fig9 runs Engine.Fig9 on a fresh default engine.
func Fig9(opt Options) (*stats.Table, error) { return NewEngine(0).Fig9(opt) }

// Fig9 reproduces Figure 9: the overhead of the WritersBlock protocol
// itself — execution time and network traffic of in-order commit over
// WritersBlock coherence, normalized to in-order commit over the base
// directory protocol. Values near 1.0 demonstrate "no perceptible
// overhead".
func (e *Engine) Fig9(opt Options) (*stats.Table, error) {
	ws := workload.Evaluation()
	var jobs []simJob
	for _, w := range ws {
		jobs = append(jobs,
			simJob{
				label: fmt.Sprintf("fig9 %s base", w.Name),
				w:     w,
				cfg:   figConfig(core.SLM, core.InOrderBase, opt),
				scale: opt.Scale,
			},
			simJob{
				label: fmt.Sprintf("fig9 %s wb", w.Name),
				w:     w,
				cfg:   figConfig(core.SLM, core.InOrderWB, opt),
				scale: opt.Scale,
			})
	}
	results, err := e.run(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 9: WritersBlock protocol overhead (normalized to base, in-order commit)",
		"benchmark", "exec-time", "traffic(flit-hops)")
	var times, traffic []float64
	for i, w := range ws {
		base, wb := results[2*i], results[2*i+1]
		tn := stats.Ratio(float64(wb.Cycles), float64(base.Cycles))
		fn := stats.Ratio(float64(wb.NetFlitHops), float64(base.NetFlitHops))
		times = append(times, tn)
		traffic = append(traffic, fn)
		t.AddRow(w.Name, tn, fn)
	}
	t.AddRow("geomean", stats.GeoMean(times), stats.GeoMean(traffic))
	return t, nil
}

// Fig10Stalls runs Engine.Fig10Stalls on a fresh default engine.
func Fig10Stalls(opt Options) (*stats.Table, error) { return NewEngine(0).Fig10Stalls(opt) }

// Fig10Stalls reproduces Figure 10 (top): the percentage of cycles in
// which a core could not commit a single instruction, broken down by the
// structure that was full (ROB / LQ / SQ), for the SLM-class core under
// the three commit schemes.
func (e *Engine) Fig10Stalls(opt Options) (*stats.Table, error) {
	ws := workload.Evaluation()
	variants := []core.Variant{core.InOrderBase, core.OoOBase, core.OoOWB}
	var jobs []simJob
	for _, w := range ws {
		for _, v := range variants {
			jobs = append(jobs, simJob{
				label: fmt.Sprintf("fig10 %s/%s", w.Name, v),
				w:     w,
				cfg:   figConfig(core.SLM, v, opt),
				scale: opt.Scale,
			})
		}
	}
	results, err := e.run(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 10 (top): % cycles stalled by reason (SLM-class)",
		"benchmark", "variant", "%ROB-full", "%LQ-full", "%SQ-full", "%other")
	i := 0
	for _, w := range ws {
		for _, v := range variants {
			res := results[i]
			i++
			cc := float64(res.CoreCycles)
			t.AddRow(w.Name, string(v),
				100*stats.Ratio(float64(res.StallROB), cc),
				100*stats.Ratio(float64(res.StallLQ), cc),
				100*stats.Ratio(float64(res.StallSQ), cc),
				100*stats.Ratio(float64(res.StallOther), cc))
		}
	}
	return t, nil
}

// Fig10Results holds the headline numbers of Figure 10 (bottom).
type Fig10Results struct {
	Table *stats.Table
	// Improvement of OoO+WritersBlock over in-order commit and over
	// safe OoO commit (percent, average and maximum across benchmarks).
	AvgVsInOrder float64
	MaxVsInOrder float64
	AvgVsOoO     float64
	MaxVsOoO     float64
}

// Fig10Time runs Engine.Fig10Time on a fresh default engine.
func Fig10Time(opt Options) (*Fig10Results, error) { return NewEngine(0).Fig10Time(opt) }

// Fig10Time reproduces Figure 10 (bottom): execution time of safe OoO
// commit and OoO commit + WritersBlock, normalized to in-order commit
// (SLM-class). The paper reports 15.4% average (max 41.9%) improvement
// over in-order and 10.2% average (max 28.3%) over safe OoO commit.
func (e *Engine) Fig10Time(opt Options) (*Fig10Results, error) {
	ws := workload.Evaluation()
	var jobs []simJob
	for _, w := range ws {
		jobs = append(jobs,
			simJob{
				label: fmt.Sprintf("fig10 %s inorder", w.Name),
				w:     w,
				cfg:   figConfig(core.SLM, core.InOrderBase, opt),
				scale: opt.Scale,
			},
			simJob{
				label: fmt.Sprintf("fig10 %s ooo", w.Name),
				w:     w,
				cfg:   figConfig(core.SLM, core.OoOBase, opt),
				scale: opt.Scale,
			},
			simJob{
				label: fmt.Sprintf("fig10 %s wb", w.Name),
				w:     w,
				cfg:   figConfig(core.SLM, core.OoOWB, opt),
				scale: opt.Scale,
			})
	}
	results, err := e.run(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 10 (bottom): normalized execution time (SLM-class)",
		"benchmark", "inorder", "ooo-base", "ooo-wb")
	var vsIn, vsOoO []float64
	var normOoO, normWB []float64
	for i, w := range ws {
		in, ooo, wb := results[3*i], results[3*i+1], results[3*i+2]
		nO := stats.Ratio(float64(ooo.Cycles), float64(in.Cycles))
		nW := stats.Ratio(float64(wb.Cycles), float64(in.Cycles))
		t.AddRow(w.Name, 1.0, nO, nW)
		normOoO = append(normOoO, nO)
		normWB = append(normWB, nW)
		vsIn = append(vsIn, 100*(1-nW))
		vsOoO = append(vsOoO, 100*(1-stats.Ratio(float64(wb.Cycles), float64(ooo.Cycles))))
	}
	t.AddRow("geomean", 1.0, stats.GeoMean(normOoO), stats.GeoMean(normWB))
	return &Fig10Results{
		Table:        t,
		AvgVsInOrder: stats.Mean(vsIn),
		MaxVsInOrder: stats.Max(vsIn),
		AvgVsOoO:     stats.Mean(vsOoO),
		MaxVsOoO:     stats.Max(vsOoO),
	}, nil
}

// ProtocolCompare runs Engine.ProtocolCompare on a fresh default engine.
func ProtocolCompare(opt Options) (*stats.Table, error) {
	return NewEngine(0).ProtocolCompare(opt)
}

// ProtocolCompare compares every evaluated protocol in the registry
// head-to-head (E23): execution time and network traffic of safe
// out-of-order commit over each protocol, normalized per benchmark to
// the first registered protocol (base), plus each protocol's absolute
// blocked-writes rate — WritersBlock parks writers at the directory,
// tardis parks them on lease timers, base never blocks. Registering an
// evaluated protocol adds its column block with no edits here.
func (e *Engine) ProtocolCompare(opt Options) (*stats.Table, error) {
	var specs []*core.VariantSpec
	for _, s := range core.VariantSpecs() {
		if s.Sound && s.Policy == "ooo" && s.Protocol.Evaluated {
			specs = append(specs, s)
		}
	}
	ws := workload.Evaluation()
	var jobs []simJob
	for _, w := range ws {
		for _, s := range specs {
			jobs = append(jobs, simJob{
				label: fmt.Sprintf("protocols %s/%s", w.Name, s.Protocol.Name),
				w:     w,
				cfg:   figConfig(core.SLM, s.Name, opt),
				scale: opt.Scale,
			})
		}
	}
	results, err := e.run(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Protocol comparison: safe OoO commit over each registered protocol (normalized to "+specs[0].Protocol.Name+")",
		"benchmark", "protocol", "exec-time", "traffic(flit-hops)", "blocked-writes/kstore")
	norm := make([][]float64, len(specs)) // per protocol: exec-time normals for geomean
	traf := make([][]float64, len(specs))
	i := 0
	for _, w := range ws {
		base := results[i]
		for si, s := range specs {
			res := results[i]
			i++
			tn := stats.Ratio(float64(res.Cycles), float64(base.Cycles))
			fn := stats.Ratio(float64(res.NetFlitHops), float64(base.NetFlitHops))
			norm[si] = append(norm[si], tn)
			traf[si] = append(traf[si], fn)
			t.AddRow(w.Name, s.Protocol.Name, tn, fn,
				stats.PerMille(res.BlockedWrites, res.CommittedStores))
		}
	}
	for si, s := range specs {
		t.AddRow("geomean", s.Protocol.Name, stats.GeoMean(norm[si]), stats.GeoMean(traf[si]), 0.0)
	}
	return t, nil
}

// Squashes runs Engine.Squashes on a fresh default engine.
func Squashes(opt Options) (*stats.Table, error) { return NewEngine(0).Squashes(opt) }

// Squashes reproduces the motivational claim of Section 1: WritersBlock
// eliminates consistency squashes (invalidation- and eviction-triggered
// replays) entirely, where the squash-based baseline pays for them.
func (e *Engine) Squashes(opt Options) (*stats.Table, error) {
	ws := workload.Evaluation()
	var jobs []simJob
	for _, w := range ws {
		jobs = append(jobs,
			simJob{
				label: fmt.Sprintf("squash %s base", w.Name),
				w:     w,
				cfg:   figConfig(core.SLM, core.OoOBase, opt),
				scale: opt.Scale,
			},
			simJob{
				label: fmt.Sprintf("squash %s wb", w.Name),
				w:     w,
				cfg:   figConfig(core.SLM, core.OoOWB, opt),
				scale: opt.Scale,
			})
	}
	results, err := e.run(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Consistency squashes per million committed instructions",
		"benchmark", "ooo-base", "ooo-wb")
	for i, w := range ws {
		base, wb := results[2*i], results[2*i+1]
		t.AddRow(w.Name,
			1000*stats.PerMille(base.SquashInv+base.SquashEvict, base.Committed),
			1000*stats.PerMille(wb.SquashInv+wb.SquashEvict, wb.Committed))
	}
	return t, nil
}
