// Package experiments regenerates the paper's evaluation artifacts:
// Figure 8 (WritersBlock events per kilo-store / uncacheable reads per
// kilo-load), Figure 9 (execution time and network traffic overhead of
// the WritersBlock protocol), Figure 10 (commit-stall breakdown and
// normalized execution time of out-of-order commit), and the auxiliary
// squash-elimination study. Each experiment returns stats tables whose
// rows correspond to the figure's bars/series.
package experiments

import (
	"fmt"

	"wbsim/internal/core"
	"wbsim/internal/stats"
	"wbsim/internal/workload"
)

// Options control experiment runs.
type Options struct {
	Cores int
	Scale int // workload scale factor
	Seed  uint64
}

// DefaultOptions mirror the paper's 16-core runs.
func DefaultOptions() Options { return Options{Cores: 16, Scale: 2, Seed: 1} }

// runOne executes a workload under (class, variant) and returns results.
func runOne(w workload.Workload, class core.Class, v core.Variant, opt Options) (core.Results, error) {
	cfg := core.DefaultConfig(class, v)
	cfg.Cores = opt.Cores
	cfg.Seed = opt.Seed
	_, res, err := workload.Run(w, cfg, opt.Scale)
	return res, err
}

// Fig8 reproduces Figure 8: per benchmark and core class, write requests
// blocked per kilo-store (top graph) and uncacheable tear-off reads per
// kilo-load (bottom graph), measured under out-of-order commit with
// WritersBlock coherence.
func Fig8(opt Options) (*stats.Table, error) {
	t := stats.NewTable("Figure 8: WritersBlock events (OoO commit + WritersBlock)",
		"benchmark", "class", "blocked-writes/kstore", "uncacheable-reads/kload")
	for _, w := range workload.Evaluation() {
		for _, class := range core.Classes {
			res, err := runOne(w, class, core.OoOWB, opt)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s/%s: %w", w.Name, class, err)
			}
			t.AddRow(w.Name, string(class),
				stats.PerMille(res.BlockedWrites, res.CommittedStores),
				stats.PerMille(res.UncacheableReads, res.CommittedLoads))
		}
	}
	return t, nil
}

// Fig9 reproduces Figure 9: the overhead of the WritersBlock protocol
// itself — execution time and network traffic of in-order commit over
// WritersBlock coherence, normalized to in-order commit over the base
// directory protocol. Values near 1.0 demonstrate "no perceptible
// overhead".
func Fig9(opt Options) (*stats.Table, error) {
	t := stats.NewTable("Figure 9: WritersBlock protocol overhead (normalized to base, in-order commit)",
		"benchmark", "exec-time", "traffic(flit-hops)")
	var times, traffic []float64
	for _, w := range workload.Evaluation() {
		base, err := runOne(w, core.SLM, core.InOrderBase, opt)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s base: %w", w.Name, err)
		}
		wb, err := runOne(w, core.SLM, core.InOrderWB, opt)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s wb: %w", w.Name, err)
		}
		tn := stats.Ratio(float64(wb.Cycles), float64(base.Cycles))
		fn := stats.Ratio(float64(wb.NetFlitHops), float64(base.NetFlitHops))
		times = append(times, tn)
		traffic = append(traffic, fn)
		t.AddRow(w.Name, tn, fn)
	}
	t.AddRow("geomean", stats.GeoMean(times), stats.GeoMean(traffic))
	return t, nil
}

// Fig10Stalls reproduces Figure 10 (top): the percentage of cycles in
// which a core could not commit a single instruction, broken down by the
// structure that was full (ROB / LQ / SQ), for the SLM-class core under
// the three commit schemes.
func Fig10Stalls(opt Options) (*stats.Table, error) {
	t := stats.NewTable("Figure 10 (top): % cycles stalled by reason (SLM-class)",
		"benchmark", "variant", "%ROB-full", "%LQ-full", "%SQ-full", "%other")
	for _, w := range workload.Evaluation() {
		for _, v := range []core.Variant{core.InOrderBase, core.OoOBase, core.OoOWB} {
			res, err := runOne(w, core.SLM, v, opt)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s/%s: %w", w.Name, v, err)
			}
			cc := float64(res.CoreCycles)
			t.AddRow(w.Name, string(v),
				100*stats.Ratio(float64(res.StallROB), cc),
				100*stats.Ratio(float64(res.StallLQ), cc),
				100*stats.Ratio(float64(res.StallSQ), cc),
				100*stats.Ratio(float64(res.StallOther), cc))
		}
	}
	return t, nil
}

// Fig10Results holds the headline numbers of Figure 10 (bottom).
type Fig10Results struct {
	Table *stats.Table
	// Improvement of OoO+WritersBlock over in-order commit and over
	// safe OoO commit (percent, average and maximum across benchmarks).
	AvgVsInOrder float64
	MaxVsInOrder float64
	AvgVsOoO     float64
	MaxVsOoO     float64
}

// Fig10Time reproduces Figure 10 (bottom): execution time of safe OoO
// commit and OoO commit + WritersBlock, normalized to in-order commit
// (SLM-class). The paper reports 15.4% average (max 41.9%) improvement
// over in-order and 10.2% average (max 28.3%) over safe OoO commit.
func Fig10Time(opt Options) (*Fig10Results, error) {
	t := stats.NewTable("Figure 10 (bottom): normalized execution time (SLM-class)",
		"benchmark", "inorder", "ooo-base", "ooo-wb")
	var vsIn, vsOoO []float64
	var normOoO, normWB []float64
	for _, w := range workload.Evaluation() {
		in, err := runOne(w, core.SLM, core.InOrderBase, opt)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s inorder: %w", w.Name, err)
		}
		ooo, err := runOne(w, core.SLM, core.OoOBase, opt)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s ooo: %w", w.Name, err)
		}
		wb, err := runOne(w, core.SLM, core.OoOWB, opt)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s wb: %w", w.Name, err)
		}
		nO := stats.Ratio(float64(ooo.Cycles), float64(in.Cycles))
		nW := stats.Ratio(float64(wb.Cycles), float64(in.Cycles))
		t.AddRow(w.Name, 1.0, nO, nW)
		normOoO = append(normOoO, nO)
		normWB = append(normWB, nW)
		vsIn = append(vsIn, 100*(1-nW))
		vsOoO = append(vsOoO, 100*(1-stats.Ratio(float64(wb.Cycles), float64(ooo.Cycles))))
	}
	t.AddRow("geomean", 1.0, stats.GeoMean(normOoO), stats.GeoMean(normWB))
	return &Fig10Results{
		Table:        t,
		AvgVsInOrder: stats.Mean(vsIn),
		MaxVsInOrder: stats.Max(vsIn),
		AvgVsOoO:     stats.Mean(vsOoO),
		MaxVsOoO:     stats.Max(vsOoO),
	}, nil
}

// Squashes reproduces the motivational claim of Section 1: WritersBlock
// eliminates consistency squashes (invalidation- and eviction-triggered
// replays) entirely, where the squash-based baseline pays for them.
func Squashes(opt Options) (*stats.Table, error) {
	t := stats.NewTable("Consistency squashes per million committed instructions",
		"benchmark", "ooo-base", "ooo-wb")
	for _, w := range workload.Evaluation() {
		base, err := runOne(w, core.SLM, core.OoOBase, opt)
		if err != nil {
			return nil, fmt.Errorf("squash %s base: %w", w.Name, err)
		}
		wb, err := runOne(w, core.SLM, core.OoOWB, opt)
		if err != nil {
			return nil, fmt.Errorf("squash %s wb: %w", w.Name, err)
		}
		t.AddRow(w.Name,
			1000*stats.PerMille(base.SquashInv+base.SquashEvict, base.Committed),
			1000*stats.PerMille(wb.SquashInv+wb.SquashEvict, wb.Committed))
	}
	return t, nil
}
