package experiments

import (
	"strings"
	"testing"

	"wbsim/internal/core"
	"wbsim/internal/workload"
)

// TestEngineFailedJobDoesNotAbortSiblings: one hanging job in a batch
// must fail alone — siblings run to completion, the failure is recorded
// with its reproduction identity, and the batch error names the job.
func TestEngineFailedJobDoesNotAbortSiblings(t *testing.T) {
	e := NewEngine(2)
	w, ok := workload.Get("fft")
	if !ok {
		t.Fatal("fft workload missing")
	}
	good := figConfig(core.SLM, core.OoOWB, tinyOptions())
	bad := good
	bad.MaxCycles = 10 // guaranteed budget hang
	jobs := []simJob{
		{label: "batch good-a", w: w, cfg: good, scale: 1},
		{label: "batch bad", w: w, cfg: bad, scale: 1},
		{label: "batch good-b", w: w, cfg: good, scale: 1},
	}
	_, err := e.run(jobs)
	if err == nil || !strings.Contains(err.Error(), "batch bad") {
		t.Fatalf("batch error does not name the failed job: %v", err)
	}
	// Both distinct configs actually simulated: the good config once
	// (plus one cache hit for its duplicate) and the bad one once.
	if ran, hits := e.memo.Stats(); ran != 2 || hits != 1 {
		t.Fatalf("jobs-run=%d cache-hits=%d, want 2/1 (siblings must complete)", ran, hits)
	}
	fails := e.Failures()
	if len(fails) != 1 {
		t.Fatalf("failures recorded: %+v", fails)
	}
	f := fails[0]
	if f.Label != "batch bad" || f.Kind != "hang" || f.Workload != "fft" ||
		f.Class != core.SLM || f.Variant != core.OoOWB || f.Seed != 1 || f.Scale != 1 {
		t.Fatalf("failure identity incomplete: %+v", f)
	}
	if c := e.Report().Get("engine.jobs-failed"); c != 1 {
		t.Fatalf("engine.jobs-failed = %d", c)
	}

	// The failure was never cached: resubmitting the identical bad job
	// recomputes (deterministically failing again) instead of serving a
	// poisoned entry.
	if _, err := e.run([]simJob{{label: "batch retry", w: w, cfg: bad, scale: 1}}); err == nil {
		t.Fatal("deterministic hang vanished on retry")
	}
	if ran, _ := e.memo.Stats(); ran != 3 {
		t.Fatalf("jobs-run=%d after retry, want 3 (error must not be cached)", ran)
	}
}
