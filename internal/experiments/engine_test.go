package experiments

import (
	"strings"
	"testing"

	"wbsim/internal/core"
	"wbsim/internal/workload"
)

// tinyOptions shrink the machine further than smokeOptions so the
// engine tests also run in -short mode (they are the concurrency
// coverage for `go test -race -short`).
func tinyOptions() Options { return Options{Cores: 2, Scale: 1, Seed: 1} }

// TestEngineDeterminism is the acceptance bar of the parallel engine:
// tables must be byte-identical at -parallel 1 and -parallel 8.
func TestEngineDeterminism(t *testing.T) {
	opt := tinyOptions()
	type render struct{ fig8, fig10 string }
	renders := make(map[int]render)
	for _, parallel := range []int{1, 8} {
		e := NewEngine(parallel)
		t8, err := e.Fig8(opt)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		r10, err := e.Fig10Time(opt)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		renders[parallel] = render{t8.String(), r10.Table.String()}
	}
	if renders[1].fig8 != renders[8].fig8 {
		t.Errorf("Fig8 differs between -parallel 1 and 8:\n--- p=1 ---\n%s--- p=8 ---\n%s",
			renders[1].fig8, renders[8].fig8)
	}
	if renders[1].fig10 != renders[8].fig10 {
		t.Errorf("Fig10Time differs between -parallel 1 and 8:\n--- p=1 ---\n%s--- p=8 ---\n%s",
			renders[1].fig10, renders[8].fig10)
	}
}

// TestEngineMemoizesAcrossFigures asserts the cross-figure cache wins:
// Fig10Stalls, Fig10Time and Squashes all need SLM×{OoOBase, OoOWB}
// runs, so a shared engine must simulate each combo once.
func TestEngineMemoizesAcrossFigures(t *testing.T) {
	opt := tinyOptions()
	e := NewEngine(4)
	if _, err := e.Fig10Stalls(opt); err != nil {
		t.Fatal(err)
	}
	n := uint64(len(workload.Evaluation()))
	jobs, hits := e.Report().Get("engine.jobs-run"), e.Report().Get("engine.cache-hits")
	if jobs != 3*n || hits != 0 {
		t.Fatalf("after Fig10Stalls: %d jobs / %d hits, want %d / 0", jobs, hits, 3*n)
	}
	// Fig10Time needs exactly the same 3n combos: all hits, no new jobs.
	if _, err := e.Fig10Time(opt); err != nil {
		t.Fatal(err)
	}
	jobs, hits = e.Report().Get("engine.jobs-run"), e.Report().Get("engine.cache-hits")
	if jobs != 3*n || hits != 3*n {
		t.Fatalf("after Fig10Time: %d jobs / %d hits, want %d / %d", jobs, hits, 3*n, 3*n)
	}
	// Squashes needs the OoOBase/OoOWB subset: 2n more hits.
	if _, err := e.Squashes(opt); err != nil {
		t.Fatal(err)
	}
	jobs, hits = e.Report().Get("engine.jobs-run"), e.Report().Get("engine.cache-hits")
	if jobs != 3*n || hits != 5*n {
		t.Fatalf("after Squashes: %d jobs / %d hits, want %d / %d", jobs, hits, 3*n, 5*n)
	}
}

// TestBenchEngineSharing covers the benchmark-harness satellite: the two
// Fig8 benchmarks regenerate the same table on the shared engine, so the
// second regeneration must be served entirely from the memo cache.
func TestBenchEngineSharing(t *testing.T) {
	opt := tinyOptions()
	e := NewEngine(4)
	first, err := e.Fig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	jobsBefore := e.Report().Get("engine.jobs-run")
	second, err := e.Fig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	jobsAfter, hits := e.Report().Get("engine.jobs-run"), e.Report().Get("engine.cache-hits")
	if jobsAfter != jobsBefore {
		t.Errorf("second Fig8 ran %d new simulations, want 0", jobsAfter-jobsBefore)
	}
	if want := jobsBefore; hits != want {
		t.Errorf("cache hits = %d, want %d (one per job of the repeated figure)", hits, want)
	}
	if first.String() != second.String() {
		t.Error("cached Fig8 table differs from the first run")
	}
}

// TestEngineKeyDistinguishesConfigs guards the memo key: configurations
// differing only in an override or a nested knob must not collide.
func TestEngineKeyDistinguishesConfigs(t *testing.T) {
	base := core.DefaultConfig(core.SLM, core.OoOWB)

	mshr := base
	mshr.Mem.ReservedMSHRs = 4
	if simKey("fft", base, 1) == simKey("fft", mshr, 1) {
		t.Error("key ignores Mem.ReservedMSHRs")
	}

	cc := core.CoreConfig(core.SLM)
	cc.LDTSize = 2
	over := base
	over.CoreOverride = &cc
	if simKey("fft", base, 1) == simKey("fft", over, 1) {
		t.Error("key ignores CoreOverride")
	}

	cc2 := cc // identical override contents behind a different pointer
	over2 := base
	over2.CoreOverride = &cc2
	if simKey("fft", over, 1) != simKey("fft", over2, 1) {
		t.Error("key depends on the CoreOverride pointer, not its contents")
	}

	if simKey("fft", base, 1) == simKey("fft", base, 2) {
		t.Error("key ignores scale")
	}
	if simKey("fft", base, 1) == simKey("lu", base, 1) {
		t.Error("key ignores workload name")
	}
}

// TestEngineErrorIdentity checks worker-error propagation: the failure
// keeps its (figure, workload, class) identity, and with several
// failures the lowest-index one is reported, as a sequential loop would.
func TestEngineErrorIdentity(t *testing.T) {
	w, ok := workload.Get("fft")
	if !ok {
		t.Fatal("fft workload missing")
	}
	good := figConfig(core.SLM, core.OoOWB, tinyOptions())
	bad := good
	bad.MaxCycles = 1 // trips the livelock detector immediately
	e := NewEngine(4)
	_, err := e.run([]simJob{
		{label: "fig8 fft/SLM", w: w, cfg: good, scale: 1},
		{label: "fig8 fft/NHM", w: w, cfg: bad, scale: 1},
		{label: "fig8 fft/HSW", w: w, cfg: bad, scale: 2},
	})
	if err == nil {
		t.Fatal("batch with MaxCycles=1 jobs succeeded")
	}
	if !strings.HasPrefix(err.Error(), "fig8 fft/NHM: ") {
		t.Errorf("error = %q, want the lowest-index failure with its identity", err)
	}
}
