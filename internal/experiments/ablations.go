package experiments

import (
	"fmt"

	"wbsim/internal/core"
	"wbsim/internal/stats"
	"wbsim/internal/workload"
)

// This file contains the ablation studies DESIGN.md calls out: design
// choices the paper makes (or references) whose effect can be isolated
// in the simulator.

// AblateEvictionPolicy reproduces the Section 3.8 claim that silent
// shared-line evictions lower coherence traffic (the paper cites 9.6% on
// average, up to 25%, from Fernández-Pascual et al.). At the paper's
// full cache sizes our kernels' shared footprints fit in the private
// caches and shared lines are essentially never evicted, so the
// comparison is run with 16KB private caches, where capacity evictions
// of shared lines actually occur. It reports non-silent traffic
// normalized to silent traffic per benchmark.
func AblateEvictionPolicy(opt Options) (*stats.Table, error) {
	t := stats.NewTable("Ablation: non-silent shared evictions, 16KB private caches (normalized to silent)",
		"benchmark", "traffic", "exec-time")
	run := func(w workload.Workload, nonSilent bool) (core.Results, error) {
		cfg := core.DefaultConfig(core.SLM, core.InOrderBase)
		cfg.Cores = opt.Cores
		cfg.Seed = opt.Seed
		cfg.Mem.L2Lines = 256 // 16KB coherence point
		cfg.Mem.L1Lines = 64
		cfg.Mem.NonSilentSharedEvictions = nonSilent
		_, res, err := workload.Run(w, cfg, opt.Scale)
		return res, err
	}
	var traffic []float64
	for _, w := range workload.Evaluation() {
		silent, err := run(w, false)
		if err != nil {
			return nil, fmt.Errorf("ablate-evict %s: %w", w.Name, err)
		}
		noisy, err := run(w, true)
		if err != nil {
			return nil, fmt.Errorf("ablate-evict %s non-silent: %w", w.Name, err)
		}
		tr := stats.Ratio(float64(noisy.NetFlitHops), float64(silent.NetFlitHops))
		traffic = append(traffic, tr)
		t.AddRow(w.Name, tr, stats.Ratio(float64(noisy.Cycles), float64(silent.Cycles)))
	}
	t.AddRow("geomean", stats.GeoMean(traffic), 0.0)
	return t, nil
}

// AblateLDTSize sweeps the Lockdown Table size for OoO+WritersBlock on a
// hit-under-miss heavy subset, reporting execution time normalized to
// the paper's 32-entry LDT. The paper argues a small LDT suffices
// because the Bell-Lipasti conditions throttle M-speculative commits.
func AblateLDTSize(opt Options) (*stats.Table, error) {
	t := stats.NewTable("Ablation: LDT size (execution time normalized to 32 entries)",
		"benchmark", "ldt=1", "ldt=2", "ldt=4", "ldt=8", "ldt=32")
	subset := []string{"blackscholes", "fft", "bodytrack", "streamcluster"}
	sizes := []int{1, 2, 4, 8, 32}
	for _, name := range subset {
		w, ok := workload.Get(name)
		if !ok {
			return nil, fmt.Errorf("ablate-ldt: unknown workload %q", name)
		}
		cycles := make([]float64, len(sizes))
		for i, n := range sizes {
			cc := core.CoreConfig(core.SLM)
			cc.LDTSize = n
			cfg := core.DefaultConfig(core.SLM, core.OoOWB)
			cfg.Cores = opt.Cores
			cfg.Seed = opt.Seed
			cfg.CoreOverride = &cc
			_, res, err := workload.Run(w, cfg, opt.Scale)
			if err != nil {
				return nil, fmt.Errorf("ablate-ldt %s/%d: %w", name, n, err)
			}
			cycles[i] = float64(res.Cycles)
		}
		base := cycles[len(cycles)-1]
		t.AddRow(name,
			cycles[0]/base, cycles[1]/base, cycles[2]/base, cycles[3]/base, 1.0)
	}
	return t, nil
}

// AblateReservedMSHRs sweeps the SoS-reserved MSHR count (Section 3.5.2
// requires at least one; more trades store MLP for load latency).
func AblateReservedMSHRs(opt Options) (*stats.Table, error) {
	t := stats.NewTable("Ablation: reserved MSHRs (execution time normalized to 2)",
		"benchmark", "reserve=1", "reserve=2", "reserve=4")
	subset := []string{"canneal", "streamcluster", "water_nsq"}
	reserves := []int{1, 2, 4}
	for _, name := range subset {
		w, ok := workload.Get(name)
		if !ok {
			return nil, fmt.Errorf("ablate-mshr: unknown workload %q", name)
		}
		cycles := make([]float64, len(reserves))
		for i, n := range reserves {
			cfg := core.DefaultConfig(core.SLM, core.OoOWB)
			cfg.Cores = opt.Cores
			cfg.Seed = opt.Seed
			cfg.Mem.ReservedMSHRs = n
			_, res, err := workload.Run(w, cfg, opt.Scale)
			if err != nil {
				return nil, fmt.Errorf("ablate-mshr %s/%d: %w", name, n, err)
			}
			cycles[i] = float64(res.Cycles)
		}
		t.AddRow(name, cycles[0]/cycles[1], 1.0, cycles[2]/cycles[1])
	}
	return t, nil
}

// ClassSweep extends Figure 10 to the NHM and HSW classes (the paper
// shows Figure 10 for SLM only, noting WritersBlock sensitivity to LQ
// depth): normalized execution time of OoO+WB vs in-order per class.
func ClassSweep(opt Options) (*stats.Table, error) {
	t := stats.NewTable("Extension: OoO+WritersBlock speedup vs in-order commit, per core class",
		"benchmark", "SLM", "NHM", "HSW")
	for _, w := range workload.Evaluation() {
		row := []interface{}{w.Name}
		for _, class := range core.Classes {
			in, err := runOne(w, class, core.InOrderBase, opt)
			if err != nil {
				return nil, fmt.Errorf("class-sweep %s/%s: %w", w.Name, class, err)
			}
			wb, err := runOne(w, class, core.OoOWB, opt)
			if err != nil {
				return nil, fmt.Errorf("class-sweep %s/%s: %w", w.Name, class, err)
			}
			row = append(row, stats.Ratio(float64(wb.Cycles), float64(in.Cycles)))
		}
		t.AddRow(row...)
	}
	return t, nil
}
