package experiments

import (
	"fmt"

	"wbsim/internal/core"
	"wbsim/internal/stats"
	"wbsim/internal/workload"
)

// This file contains the ablation studies DESIGN.md calls out: design
// choices the paper makes (or references) whose effect can be isolated
// in the simulator. Like the figures, each ablation submits its whole
// simulation matrix to the engine and assembles rows by index.

// AblateEvictionPolicy runs Engine.AblateEvictionPolicy on a fresh
// default engine.
func AblateEvictionPolicy(opt Options) (*stats.Table, error) {
	return NewEngine(0).AblateEvictionPolicy(opt)
}

// AblateEvictionPolicy reproduces the Section 3.8 claim that silent
// shared-line evictions lower coherence traffic (the paper cites 9.6% on
// average, up to 25%, from Fernández-Pascual et al.). At the paper's
// full cache sizes our kernels' shared footprints fit in the private
// caches and shared lines are essentially never evicted, so the
// comparison is run with 16KB private caches, where capacity evictions
// of shared lines actually occur. It reports non-silent traffic
// normalized to silent traffic per benchmark.
func (e *Engine) AblateEvictionPolicy(opt Options) (*stats.Table, error) {
	cfgFor := func(nonSilent bool) core.Config {
		cfg := figConfig(core.SLM, core.InOrderBase, opt)
		cfg.Mem.L2Lines = 256 // 16KB coherence point
		cfg.Mem.L1Lines = 64
		cfg.Mem.NonSilentSharedEvictions = nonSilent
		return cfg
	}
	ws := workload.Evaluation()
	var jobs []simJob
	for _, w := range ws {
		jobs = append(jobs,
			simJob{
				label: fmt.Sprintf("ablate-evict %s", w.Name),
				w:     w,
				cfg:   cfgFor(false),
				scale: opt.Scale,
			},
			simJob{
				label: fmt.Sprintf("ablate-evict %s non-silent", w.Name),
				w:     w,
				cfg:   cfgFor(true),
				scale: opt.Scale,
			})
	}
	results, err := e.run(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: non-silent shared evictions, 16KB private caches (normalized to silent)",
		"benchmark", "traffic", "exec-time")
	var traffic []float64
	for i, w := range ws {
		silent, noisy := results[2*i], results[2*i+1]
		tr := stats.Ratio(float64(noisy.NetFlitHops), float64(silent.NetFlitHops))
		traffic = append(traffic, tr)
		t.AddRow(w.Name, tr, stats.Ratio(float64(noisy.Cycles), float64(silent.Cycles)))
	}
	t.AddRow("geomean", stats.GeoMean(traffic), 0.0)
	return t, nil
}

// AblateLDTSize runs Engine.AblateLDTSize on a fresh default engine.
func AblateLDTSize(opt Options) (*stats.Table, error) { return NewEngine(0).AblateLDTSize(opt) }

// AblateLDTSize sweeps the Lockdown Table size for OoO+WritersBlock on a
// hit-under-miss heavy subset, reporting execution time normalized to
// the paper's 32-entry LDT. The paper argues a small LDT suffices
// because the Bell-Lipasti conditions throttle M-speculative commits.
func (e *Engine) AblateLDTSize(opt Options) (*stats.Table, error) {
	subset := []string{"blackscholes", "fft", "bodytrack", "streamcluster"}
	sizes := []int{1, 2, 4, 8, 32}
	var jobs []simJob
	for _, name := range subset {
		w, ok := workload.Get(name)
		if !ok {
			return nil, fmt.Errorf("ablate-ldt: unknown workload %q", name)
		}
		for _, n := range sizes {
			cc := core.CoreConfig(core.SLM)
			cc.LDTSize = n
			cfg := figConfig(core.SLM, core.OoOWB, opt)
			cfg.CoreOverride = &cc
			jobs = append(jobs, simJob{
				label: fmt.Sprintf("ablate-ldt %s/%d", name, n),
				w:     w,
				cfg:   cfg,
				scale: opt.Scale,
			})
		}
	}
	results, err := e.run(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: LDT size (execution time normalized to 32 entries)",
		"benchmark", "ldt=1", "ldt=2", "ldt=4", "ldt=8", "ldt=32")
	for i, name := range subset {
		cycles := make([]float64, len(sizes))
		for j := range sizes {
			cycles[j] = float64(results[i*len(sizes)+j].Cycles)
		}
		base := cycles[len(cycles)-1]
		t.AddRow(name,
			cycles[0]/base, cycles[1]/base, cycles[2]/base, cycles[3]/base, 1.0)
	}
	return t, nil
}

// AblateReservedMSHRs runs Engine.AblateReservedMSHRs on a fresh default
// engine.
func AblateReservedMSHRs(opt Options) (*stats.Table, error) {
	return NewEngine(0).AblateReservedMSHRs(opt)
}

// AblateReservedMSHRs sweeps the SoS-reserved MSHR count (Section 3.5.2
// requires at least one; more trades store MLP for load latency).
func (e *Engine) AblateReservedMSHRs(opt Options) (*stats.Table, error) {
	subset := []string{"canneal", "streamcluster", "water_nsq"}
	reserves := []int{1, 2, 4}
	var jobs []simJob
	for _, name := range subset {
		w, ok := workload.Get(name)
		if !ok {
			return nil, fmt.Errorf("ablate-mshr: unknown workload %q", name)
		}
		for _, n := range reserves {
			cfg := figConfig(core.SLM, core.OoOWB, opt)
			cfg.Mem.ReservedMSHRs = n
			jobs = append(jobs, simJob{
				label: fmt.Sprintf("ablate-mshr %s/%d", name, n),
				w:     w,
				cfg:   cfg,
				scale: opt.Scale,
			})
		}
	}
	results, err := e.run(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: reserved MSHRs (execution time normalized to 2)",
		"benchmark", "reserve=1", "reserve=2", "reserve=4")
	for i, name := range subset {
		cycles := make([]float64, len(reserves))
		for j := range reserves {
			cycles[j] = float64(results[i*len(reserves)+j].Cycles)
		}
		t.AddRow(name, cycles[0]/cycles[1], 1.0, cycles[2]/cycles[1])
	}
	return t, nil
}

// ClassSweep runs Engine.ClassSweep on a fresh default engine.
func ClassSweep(opt Options) (*stats.Table, error) { return NewEngine(0).ClassSweep(opt) }

// ClassSweep extends Figure 10 to the NHM and HSW classes (the paper
// shows Figure 10 for SLM only, noting WritersBlock sensitivity to LQ
// depth): normalized execution time of OoO+WB vs in-order per class.
func (e *Engine) ClassSweep(opt Options) (*stats.Table, error) {
	ws := workload.Evaluation()
	var jobs []simJob
	for _, w := range ws {
		for _, class := range core.Classes {
			jobs = append(jobs,
				simJob{
					label: fmt.Sprintf("class-sweep %s/%s", w.Name, class),
					w:     w,
					cfg:   figConfig(class, core.InOrderBase, opt),
					scale: opt.Scale,
				},
				simJob{
					label: fmt.Sprintf("class-sweep %s/%s", w.Name, class),
					w:     w,
					cfg:   figConfig(class, core.OoOWB, opt),
					scale: opt.Scale,
				})
		}
	}
	results, err := e.run(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Extension: OoO+WritersBlock speedup vs in-order commit, per core class",
		"benchmark", "SLM", "NHM", "HSW")
	i := 0
	for _, w := range ws {
		row := []interface{}{w.Name}
		for range core.Classes {
			in, wb := results[i], results[i+1]
			i += 2
			row = append(row, stats.Ratio(float64(wb.Cycles), float64(in.Cycles)))
		}
		t.AddRow(row...)
	}
	return t, nil
}
