package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"wbsim/internal/core"
	"wbsim/internal/runner"
	"wbsim/internal/stats"
	"wbsim/internal/workload"
)

// Engine executes the simulations behind the figures: independent
// (workload, config, scale) jobs fan out across a bounded worker pool,
// and a memo cache keyed by the canonical simulation identity guarantees
// that a combination shared by several figures (Fig10Stalls, Fig10Time
// and Squashes all need SLM×OoOBase/OoOWB, the bench harness regenerates
// Fig8 twice) is simulated exactly once. Results are assembled by job
// index, so every table is byte-identical to the sequential output
// regardless of parallelism.
type Engine struct {
	parallel int
	memo     *runner.Memo[core.Results]
	wallNs   atomic.Int64
}

// NewEngine returns an engine running at most parallel simulations
// concurrently; parallel <= 0 selects runner.DefaultParallel().
func NewEngine(parallel int) *Engine {
	if parallel <= 0 {
		parallel = runner.DefaultParallel()
	}
	return &Engine{parallel: parallel, memo: runner.NewMemo[core.Results]()}
}

// Parallel reports the engine's worker bound.
func (e *Engine) Parallel() int { return e.parallel }

// Report returns the engine's execution counters: simulations actually
// run, calls served from the memo cache, the worker bound, and the
// cumulative wall-clock spent inside batches.
func (e *Engine) Report() *stats.Counters {
	c := stats.NewCounters()
	jobs, hits := e.memo.Stats()
	c.Set("engine.jobs-run", jobs)
	c.Set("engine.cache-hits", hits)
	c.Set("engine.parallel", uint64(e.parallel))
	c.Set("engine.wall-ms", uint64(e.wallNs.Load()/int64(time.Millisecond)))
	return c
}

// simJob identifies one simulation in a batch. label carries the
// (figure, workload, class/variant) identity used in error messages.
type simJob struct {
	label string
	w     workload.Workload
	cfg   core.Config
	scale int
}

// simKey canonicalizes everything that determines a simulation's result:
// workload name, scale, and the full machine configuration (with the
// CoreOverride pointer flattened to its contents so identical overrides
// hash identically).
func simKey(name string, cfg core.Config, scale int) string {
	var override string
	if cfg.CoreOverride != nil {
		override = fmt.Sprintf("%+v", *cfg.CoreOverride)
	}
	flat := cfg
	flat.CoreOverride = nil
	return fmt.Sprintf("%s|scale=%d|%+v|override=%s", name, scale, flat, override)
}

// run executes a batch of jobs on the pool, memoizing by canonical key,
// and returns results indexed like jobs. The first failure cancels the
// rest of the batch and is returned with its job identity.
func (e *Engine) run(jobs []simJob) ([]core.Results, error) {
	out := make([]core.Results, len(jobs))
	start := time.Now()
	err := runner.ForEach(context.Background(), e.parallel, len(jobs), func(_ context.Context, i int) error {
		j := jobs[i]
		res, err := e.memo.Do(simKey(j.w.Name, j.cfg, j.scale), func() (core.Results, error) {
			_, res, err := workload.Run(j.w, j.cfg, j.scale)
			return res, err
		})
		if err != nil {
			return fmt.Errorf("%s: %w", j.label, err)
		}
		out[i] = res
		return nil
	})
	e.wallNs.Add(time.Since(start).Nanoseconds())
	if err != nil {
		return nil, err
	}
	return out, nil
}

// figConfig is the paper-default machine for a figure simulation.
func figConfig(class core.Class, v core.Variant, opt Options) core.Config {
	cfg := core.DefaultConfig(class, v)
	cfg.Cores = opt.Cores
	cfg.Seed = opt.Seed
	return cfg
}
