package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wbsim/internal/coherence"
	"wbsim/internal/core"
	"wbsim/internal/faults"
	"wbsim/internal/runner"
	"wbsim/internal/stats"
	"wbsim/internal/workload"
)

// Engine executes the simulations behind the figures: independent
// (workload, config, scale) jobs fan out across a bounded worker pool,
// and a memo cache keyed by the canonical simulation identity guarantees
// that a combination shared by several figures (Fig10Stalls, Fig10Time
// and Squashes all need SLM×OoOBase/OoOWB, the bench harness regenerates
// Fig8 twice) is simulated exactly once. Results are assembled by job
// index, so every table is byte-identical to the sequential output
// regardless of parallelism.
type Engine struct {
	parallel int
	memo     *runner.Memo[core.Results]
	wallNs   atomic.Int64

	mu       sync.Mutex
	failures []JobFailure
	cov      *coherence.CoverageAgg
}

// JobFailure records the identity of one failed simulation job: enough
// to reproduce it from the command line in one invocation.
type JobFailure struct {
	Label    string       `json:"label"`
	Workload string       `json:"workload"`
	Class    core.Class   `json:"class"`
	Variant  core.Variant `json:"variant"`
	Seed     uint64       `json:"seed"`
	Scale    int          `json:"scale"`
	Kind     string       `json:"kind"` // "hang", "panic", or "error"
	Err      string       `json:"error"`
}

// NewEngine returns an engine running at most parallel simulations
// concurrently; parallel <= 0 selects runner.DefaultParallel().
func NewEngine(parallel int) *Engine {
	if parallel <= 0 {
		parallel = runner.DefaultParallel()
	}
	return &Engine{parallel: parallel, memo: runner.NewMemo[core.Results](), cov: coherence.NewCoverageAgg()}
}

// Coverage returns the merged protocol-transition coverage of every
// simulation the engine has run (the -coverage view). Merging is
// commutative, so the aggregate is deterministic at any parallelism.
func (e *Engine) Coverage() *coherence.CoverageAgg {
	e.mu.Lock()
	defer e.mu.Unlock()
	agg := coherence.NewCoverageAgg()
	agg.Merge(e.cov)
	return agg
}

// Parallel reports the engine's worker bound.
func (e *Engine) Parallel() int { return e.parallel }

// Report returns the engine's execution counters: simulations actually
// run, calls served from the memo cache, the worker bound, and the
// cumulative wall-clock spent inside batches.
func (e *Engine) Report() *stats.Counters {
	c := stats.NewCounters()
	jobs, hits := e.memo.Stats()
	c.Set("engine.jobs-run", jobs)
	c.Set("engine.cache-hits", hits)
	c.Set("engine.parallel", uint64(e.parallel))
	c.Set("engine.wall-ms", uint64(e.wallNs.Load()/int64(time.Millisecond)))
	c.Set("engine.jobs-failed", uint64(len(e.Failures())))
	return c
}

// simJob identifies one simulation in a batch. label carries the
// (figure, workload, class/variant) identity used in error messages.
type simJob struct {
	label string
	w     workload.Workload
	cfg   core.Config
	scale int
}

// simKey canonicalizes everything that determines a simulation's result:
// workload name, scale, and the full machine configuration (with the
// CoreOverride and Faults pointers flattened to their contents so
// identical settings hash identically).
func simKey(name string, cfg core.Config, scale int) string {
	var override, plan string
	if cfg.CoreOverride != nil {
		override = fmt.Sprintf("%+v", *cfg.CoreOverride)
	}
	if cfg.Faults != nil {
		plan = fmt.Sprintf("%+v", *cfg.Faults)
	}
	flat := cfg
	flat.CoreOverride = nil
	flat.Faults = nil
	return fmt.Sprintf("%s|scale=%d|%+v|override=%s|plan=%s", name, scale, flat, override, plan)
}

// run executes a batch of jobs on the pool, memoizing by canonical key,
// and returns results indexed like jobs. A failed or panicked job fails
// alone: siblings in the batch run to completion (panic containment at
// the System.Run/workload.Run boundary turns panics into errors, and
// nothing here cancels the pool), every failure is recorded with its
// (workload, config, seed) identity for the engine report, and the
// lowest-index failure is returned — the same one a sequential loop
// would have surfaced.
func (e *Engine) run(jobs []simJob) ([]core.Results, error) {
	out := make([]core.Results, len(jobs))
	errs := make([]error, len(jobs))
	start := time.Now()
	_ = runner.ForEach(context.Background(), e.parallel, len(jobs), func(_ context.Context, i int) error {
		j := jobs[i]
		res, err := e.memo.Do(simKey(j.w.Name, j.cfg, j.scale), func() (core.Results, error) {
			_, res, err := workload.Run(j.w, j.cfg, j.scale)
			return res, err
		})
		if err != nil {
			errs[i] = fmt.Errorf("%s: %w", j.label, err)
			e.recordFailure(j, err)
			return nil // sibling jobs keep running
		}
		e.mu.Lock()
		e.cov.Merge(res.Coverage)
		e.mu.Unlock()
		out[i] = res
		return nil
	})
	e.wallNs.Add(time.Since(start).Nanoseconds())
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// recordFailure appends a failed job's identity to the engine report.
func (e *Engine) recordFailure(j simJob, err error) {
	f := JobFailure{
		Label:    j.label,
		Workload: j.w.Name,
		Class:    j.cfg.Class,
		Variant:  j.cfg.Variant,
		Seed:     j.cfg.Seed,
		Scale:    j.scale,
		Kind:     "error",
		Err:      err.Error(),
	}
	if se, ok := faults.AsSimError(err); ok {
		f.Kind = se.Kind.String()
	}
	e.mu.Lock()
	e.failures = append(e.failures, f)
	e.mu.Unlock()
}

// Failures returns the identities of every failed job so far, in the
// order recorded.
func (e *Engine) Failures() []JobFailure {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]JobFailure(nil), e.failures...)
}

// figConfig is the paper-default machine for a figure simulation.
func figConfig(class core.Class, v core.Variant, opt Options) core.Config {
	cfg := core.DefaultConfig(class, v)
	cfg.Cores = opt.Cores
	cfg.Seed = opt.Seed
	cfg.Shards = opt.Shards
	if opt.MaxCycles > 0 {
		cfg.MaxCycles = opt.MaxCycles
	}
	return cfg
}
