package experiments

import (
	"fmt"
	"strings"
	"testing"

	"wbsim/internal/workload"
)

// smokeOptions shrink the machine so the full experiment matrix runs in
// CI time.
func smokeOptions() Options { return Options{Cores: 4, Scale: 1, Seed: 1} }

func TestFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment matrix")
	}
	tb, err := Fig8(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := len(workload.Evaluation()) * 3 // benchmarks x classes
	if tb.NumRows() != want {
		t.Fatalf("rows = %d, want %d", tb.NumRows(), want)
	}
	if !strings.Contains(tb.String(), "streamcluster") {
		t.Fatal("table missing benchmarks")
	}
}

func TestFig9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment matrix")
	}
	tb, err := Fig9(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 20 benchmarks + geomean row.
	if tb.NumRows() != len(workload.Evaluation())+1 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// The WritersBlock protocol must be near-overhead-free: geomean
	// execution time within 10% of the base protocol.
	var g float64
	if _, err := sscan(tb.Row(tb.NumRows() - 1)[1], &g); err != nil {
		t.Fatal(err)
	}
	if g < 0.90 || g > 1.10 {
		t.Errorf("WritersBlock overhead geomean = %v, expected ~1.0", g)
	}
}

func TestFig10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment matrix")
	}
	r, err := Fig10Time(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline shape: OoO+WritersBlock improves over
	// in-order commit on average.
	if r.AvgVsInOrder <= 0 {
		t.Errorf("OoO+WB does not beat in-order commit: avg %.1f%%", r.AvgVsInOrder)
	}
	if r.AvgVsOoO <= 0 {
		t.Errorf("OoO+WB does not beat safe OoO commit: avg %.1f%%", r.AvgVsOoO)
	}
	st, err := Fig10Stalls(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != len(workload.Evaluation())*3 {
		t.Fatalf("stall rows = %d", st.NumRows())
	}
}

func TestSquashesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment matrix")
	}
	tb, err := Squashes(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	// WritersBlock eliminates consistency squashes: column 2 all zero.
	for i := 0; i < tb.NumRows(); i++ {
		var v float64
		if _, err := sscan(tb.Row(i)[2], &v); err == nil && v != 0 {
			t.Errorf("%s: ooo-wb has %v consistency squashes", tb.Row(i)[0], v)
		}
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment matrix")
	}
	ev, err := AblateEvictionPolicy(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Non-silent evictions must not *reduce* traffic on average.
	var g float64
	if _, err := sscan(ev.Row(ev.NumRows() - 1)[1], &g); err != nil {
		t.Fatal(err)
	}
	if g < 0.99 {
		t.Errorf("non-silent evictions reduced traffic?! geomean %v", g)
	}
	if _, err := AblateLDTSize(smokeOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := AblateReservedMSHRs(smokeOptions()); err != nil {
		t.Fatal(err)
	}
}
