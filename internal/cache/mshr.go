package cache

import (
	"fmt"

	"wbsim/internal/mem"
)

// MSHR tracks one outstanding line-granular miss. The Payload field is
// owned by the coherence layer (it stores transaction state there).
type MSHR struct {
	Line     mem.Line
	Reserved bool // allocated from the SoS-reserved pool
	Payload  any

	valid bool
}

// MSHRFile is a fully-associative miss-status holding register file with
// the resource partitioning of Section 3.5.2: `reserved` entries can only
// be claimed by SoS loads, so stores and evictions can never exhaust the
// file and block the one load whose completion every lockdown depends on.
type MSHRFile struct {
	entries  []MSHR
	index    map[mem.Line][]*MSHR
	capacity int
	reserved int
	inUse    int
	resInUse int
}

// NewMSHRFile builds a file with capacity total entries of which reserved
// are claimable only via AllocateReserved.
func NewMSHRFile(capacity, reserved int) *MSHRFile {
	if capacity <= 0 || reserved < 0 || reserved >= capacity {
		panic(fmt.Sprintf("cache: bad MSHR geometry capacity=%d reserved=%d", capacity, reserved))
	}
	return &MSHRFile{
		entries:  make([]MSHR, capacity),
		index:    make(map[mem.Line][]*MSHR, capacity),
		capacity: capacity,
		reserved: reserved,
	}
}

// Lookup returns the first MSHR outstanding for l, or nil. The common case
// is a single MSHR per line; a second one can exist transiently when a SoS
// load bypasses a blocked write (Section 3.5.2), in which case Lookup
// returns the oldest and LookupAll exposes both.
func (f *MSHRFile) Lookup(l mem.Line) *MSHR {
	es := f.index[l]
	if len(es) == 0 {
		return nil
	}
	return es[0]
}

// LookupAll returns every MSHR outstanding for l.
func (f *MSHRFile) LookupAll(l mem.Line) []*MSHR { return f.index[l] }

// FullForNormal reports whether a non-reserved allocation would fail.
func (f *MSHRFile) FullForNormal() bool {
	return f.inUse-f.resInUse >= f.capacity-f.reserved
}

// Allocate claims a normal MSHR for l. It returns nil when the
// non-reserved pool is exhausted.
func (f *MSHRFile) Allocate(l mem.Line) *MSHR {
	if f.FullForNormal() {
		return nil
	}
	return f.place(l, false)
}

// AllocateReserved claims an MSHR for a SoS load, drawing from the
// reserved pool if the normal pool is full. It returns nil only if every
// entry including the reserved ones is in use (which the protocol
// guarantees cannot happen for SoS loads, since at most one load per core
// is SoS and the pool holds at least one reserved entry).
func (f *MSHRFile) AllocateReserved(l mem.Line) *MSHR {
	if f.inUse >= f.capacity {
		return nil
	}
	reserved := f.FullForNormal()
	m := f.place(l, reserved)
	return m
}

func (f *MSHRFile) place(l mem.Line, reserved bool) *MSHR {
	for i := range f.entries {
		e := &f.entries[i]
		if !e.valid {
			e.valid = true
			e.Line = l
			e.Reserved = reserved
			e.Payload = nil
			f.index[l] = append(f.index[l], e)
			f.inUse++
			if reserved {
				f.resInUse++
			}
			return e
		}
	}
	return nil
}

// Free releases m.
func (f *MSHRFile) Free(m *MSHR) {
	if !m.valid {
		panic("cache: freeing invalid MSHR")
	}
	es := f.index[m.Line]
	for i, e := range es {
		if e == m {
			es = append(es[:i], es[i+1:]...)
			break
		}
	}
	if len(es) == 0 {
		delete(f.index, m.Line)
	} else {
		f.index[m.Line] = es
	}
	m.valid = false
	m.Payload = nil
	f.inUse--
	if m.Reserved {
		f.resInUse--
	}
}

// InUse reports the number of live entries.
func (f *MSHRFile) InUse() int { return f.inUse }

// Capacity reports the total entry count.
func (f *MSHRFile) Capacity() int { return f.capacity }

// ForEach visits live MSHRs in entry order.
func (f *MSHRFile) ForEach(fn func(*MSHR)) {
	for i := range f.entries {
		if f.entries[i].valid {
			fn(&f.entries[i])
		}
	}
}
