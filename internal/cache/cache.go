// Package cache provides the storage structures shared by the private
// cache units and the LLC banks: set-associative tag/data arrays with LRU
// replacement, and MSHR files with the resource partitioning the paper
// requires (at least one MSHR always reserved for SoS loads, Section
// 3.5.2).
package cache

import (
	"fmt"

	"wbsim/internal/mem"
)

// Entry is one cache frame. State is owned by the coherence layer; the
// array only distinguishes valid (allocated) from invalid frames.
type Entry struct {
	Line  mem.Line
	Data  mem.LineData
	State int
	Dirty bool

	valid bool
	lru   uint64
	set   int
}

// Valid reports whether the frame holds a line.
func (e *Entry) Valid() bool { return e.valid }

// Array is a set-associative cache array.
type Array struct {
	sets    int
	ways    int
	frames  []Entry
	index   map[mem.Line]*Entry
	lruTick uint64
}

// NewArray builds an array with the given line capacity and associativity.
// capacityLines must be a positive multiple of ways.
func NewArray(capacityLines, ways int) *Array {
	if capacityLines <= 0 || ways <= 0 || capacityLines%ways != 0 {
		panic(fmt.Sprintf("cache: bad geometry capacity=%d ways=%d", capacityLines, ways))
	}
	a := &Array{
		sets:   capacityLines / ways,
		ways:   ways,
		frames: make([]Entry, capacityLines),
		index:  make(map[mem.Line]*Entry, capacityLines),
	}
	for i := range a.frames {
		a.frames[i].set = i / ways
	}
	return a
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

// setOf maps a line to its set index. The index is drawn from a
// Fibonacci hash of the line number rather than its low bits: in a
// banked system the bank-interleaving already consumes the low bits, so
// a plain modulo would alias bank and set selection and leave most sets
// of every bank unused.
func (a *Array) setOf(l mem.Line) int {
	return int((uint64(l) * 0x9e3779b97f4a7c15 >> 17) % uint64(a.sets))
}

// SetIndex exposes the line-to-set mapping (tests use it to construct
// conflicting line sets).
func (a *Array) SetIndex(l mem.Line) int { return a.setOf(l) }

// Lookup returns the frame holding l, or nil. It does not update LRU; use
// Touch on an access that should refresh recency.
func (a *Array) Lookup(l mem.Line) *Entry {
	return a.index[l]
}

// Touch marks e as most recently used.
func (a *Array) Touch(e *Entry) {
	a.lruTick++
	e.lru = a.lruTick
}

// Victim returns the frame that would be allocated for l: an invalid frame
// in l's set if one exists, otherwise the LRU valid frame. The returned
// frame may hold another line (the caller must evict it first). Frames for
// which keep(entry) returns true are skipped (used to avoid victimizing
// lines with special protocol state); if every frame is kept, Victim
// returns nil.
func (a *Array) Victim(l mem.Line, keep func(*Entry) bool) *Entry {
	set := a.setOf(l)
	base := set * a.ways
	var victim *Entry
	for i := 0; i < a.ways; i++ {
		e := &a.frames[base+i]
		if !e.valid {
			return e
		}
		if keep != nil && keep(e) {
			continue
		}
		if victim == nil || e.lru < victim.lru {
			victim = e
		}
	}
	return victim
}

// Install places line l in frame e (which must be invalid or already
// evicted by the caller) and returns it.
func (a *Array) Install(e *Entry, l mem.Line) *Entry {
	if e.valid {
		panic(fmt.Sprintf("cache: installing %v over valid frame holding %v", l, e.Line))
	}
	if a.setOf(l) != e.set {
		panic(fmt.Sprintf("cache: line %v does not map to frame set %d", l, e.set))
	}
	e.Line = l
	e.valid = true
	e.Dirty = false
	e.State = 0
	e.Data = mem.LineData{}
	a.index[l] = e
	a.Touch(e)
	return e
}

// Evict invalidates frame e, removing it from the index.
func (a *Array) Evict(e *Entry) {
	if !e.valid {
		return
	}
	delete(a.index, e.Line)
	e.valid = false
	e.Dirty = false
	e.State = 0
}

// Occupancy reports the number of valid frames.
func (a *Array) Occupancy() int { return len(a.index) }

// ForEach visits every valid frame (in frame order, deterministic).
func (a *Array) ForEach(f func(*Entry)) {
	for i := range a.frames {
		if a.frames[i].valid {
			f(&a.frames[i])
		}
	}
}
