// Package cache provides the storage structures shared by the private
// cache units and the LLC banks: set-associative tag/data arrays with LRU
// replacement, and MSHR files with the resource partitioning the paper
// requires (at least one MSHR always reserved for SoS loads, Section
// 3.5.2).
package cache

import (
	"fmt"

	"wbsim/internal/mem"
)

// Entry is one cache frame. State is owned by the coherence layer; the
// array only distinguishes valid (allocated) from invalid frames.
type Entry struct {
	Line  mem.Line
	Data  mem.LineData
	State int
	Dirty bool

	valid bool
	lru   uint64
	set   int
	way   int
}

// Valid reports whether the frame holds a line.
func (e *Entry) Valid() bool { return e.valid }

// Array is a set-associative cache array. Frame storage is allocated
// per set on first touch: most simulated runs reference a small fraction
// of a megabyte-sized LLC bank, and eagerly zeroing every frame of every
// array dominated machine-construction cost. A set's frame slice is
// never reallocated once created, so *Entry pointers handed out stay
// valid for the array's lifetime.
type Array struct {
	sets   int
	ways   int
	frames [][]Entry // frames[set], nil until the set is first touched
	// tags mirrors the Line of every valid frame in a dense per-set
	// word array: a lookup scans one cache line of tags instead of
	// striding across the full (data-carrying) Entry structs. A tag is
	// meaningful only while its frame is valid; Evict leaves it stale,
	// which costs at most one extra valid check on a later scan.
	tags     [][]mem.Line
	occupied int
	lruTick  uint64
}

// NewArray builds an array with the given line capacity and associativity.
// capacityLines must be a positive multiple of ways.
func NewArray(capacityLines, ways int) *Array {
	if capacityLines <= 0 || ways <= 0 || capacityLines%ways != 0 {
		panic(fmt.Sprintf("cache: bad geometry capacity=%d ways=%d", capacityLines, ways))
	}
	return &Array{
		sets:   capacityLines / ways,
		ways:   ways,
		frames: make([][]Entry, capacityLines/ways),
		tags:   make([][]mem.Line, capacityLines/ways),
	}
}

// setFrames returns set's frame slice, allocating it on first touch.
func (a *Array) setFrames(set int) []Entry {
	fs := a.frames[set]
	if fs == nil {
		fs = make([]Entry, a.ways)
		for i := range fs {
			fs[i].set = set
			fs[i].way = i
		}
		a.frames[set] = fs
		a.tags[set] = make([]mem.Line, a.ways)
	}
	return fs
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return a.sets }

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

// setOf maps a line to its set index. The index is drawn from a
// Fibonacci hash of the line number rather than its low bits: in a
// banked system the bank-interleaving already consumes the low bits, so
// a plain modulo would alias bank and set selection and leave most sets
// of every bank unused.
func (a *Array) setOf(l mem.Line) int {
	return int((uint64(l) * 0x9e3779b97f4a7c15 >> 17) % uint64(a.sets))
}

// SetIndex exposes the line-to-set mapping (tests use it to construct
// conflicting line sets).
func (a *Array) SetIndex(l mem.Line) int { return a.setOf(l) }

// Lookup returns the frame holding l, or nil. It does not update LRU; use
// Touch on an access that should refresh recency. Like the hardware it
// models, lookup is a tag match across the line's set — cheaper than the
// hash-map index it replaced, which dominated the load hit path.
func (a *Array) Lookup(l mem.Line) *Entry {
	set := a.setOf(l)
	for i, t := range a.tags[set] {
		if t == l {
			if e := &a.frames[set][i]; e.valid {
				return e
			}
		}
	}
	return nil
}

// Touch marks e as most recently used.
func (a *Array) Touch(e *Entry) {
	a.lruTick++
	e.lru = a.lruTick
}

// Victim returns the frame that would be allocated for l: an invalid frame
// in l's set if one exists, otherwise the LRU valid frame. The returned
// frame may hold another line (the caller must evict it first). Frames for
// which keep(entry) returns true are skipped (used to avoid victimizing
// lines with special protocol state); if every frame is kept, Victim
// returns nil.
func (a *Array) Victim(l mem.Line, keep func(*Entry) bool) *Entry {
	fs := a.setFrames(a.setOf(l))
	var victim *Entry
	for i := 0; i < a.ways; i++ {
		e := &fs[i]
		if !e.valid {
			return e
		}
		if keep != nil && keep(e) {
			continue
		}
		if victim == nil || e.lru < victim.lru {
			victim = e
		}
	}
	return victim
}

// Install places line l in frame e (which must be invalid or already
// evicted by the caller) and returns it.
func (a *Array) Install(e *Entry, l mem.Line) *Entry {
	if e.valid {
		panic(fmt.Sprintf("cache: installing %v over valid frame holding %v", l, e.Line))
	}
	if a.setOf(l) != e.set {
		panic(fmt.Sprintf("cache: line %v does not map to frame set %d", l, e.set))
	}
	e.Line = l
	e.valid = true
	e.Dirty = false
	e.State = 0
	e.Data = mem.LineData{}
	a.tags[e.set][e.way] = l
	a.occupied++
	a.Touch(e)
	return e
}

// LRURank reports e's eviction rank among the valid frames of its set:
// 0 means e is the least recently used — the next victim among valid
// frames. Raw LRU ticks come from a per-array monotone counter and so
// differ between runs that reach equivalent states; canonical state
// fingerprints (the model checker's) use the rank instead.
func (a *Array) LRURank(e *Entry) int {
	rank := 0
	for i := range a.frames[e.set] {
		o := &a.frames[e.set][i]
		if o.valid && o != e && o.lru < e.lru {
			rank++
		}
	}
	return rank
}

// Evict invalidates frame e, removing it from the index.
func (a *Array) Evict(e *Entry) {
	if !e.valid {
		return
	}
	e.valid = false
	e.Dirty = false
	e.State = 0
	a.occupied--
}

// Occupancy reports the number of valid frames.
func (a *Array) Occupancy() int { return a.occupied }

// ForEach visits every valid frame (in set, then way order —
// deterministic, and identical to the flat frame order).
func (a *Array) ForEach(f func(*Entry)) {
	for _, fs := range a.frames {
		for i := range fs {
			if fs[i].valid {
				f(&fs[i])
			}
		}
	}
}
