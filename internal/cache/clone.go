package cache

import "wbsim/internal/mem"

// Deep-copy support for the model checker's state cloning
// (coherence.Model.Clone). The structures here hand out interior
// pointers (*Entry frames, *MSHR entries) that the coherence layer
// stores in its own state, so each Clone returns a remap function
// translating a pointer into the original structure to its counterpart
// in the copy.

// Clone returns a deep copy of the array and a remap function from
// frames of the original to the corresponding frames of the copy
// (nil maps to nil). LRU ticks and occupancy are preserved exactly, so
// victim selection in the copy matches the original.
func (a *Array) Clone() (*Array, func(*Entry) *Entry) {
	out := &Array{
		sets:     a.sets,
		ways:     a.ways,
		frames:   make([][]Entry, len(a.frames)),
		tags:     make([][]mem.Line, len(a.tags)),
		occupied: a.occupied,
		lruTick:  a.lruTick,
	}
	for s, fs := range a.frames {
		if fs == nil {
			continue
		}
		nfs := make([]Entry, len(fs))
		copy(nfs, fs)
		out.frames[s] = nfs
		nts := make([]mem.Line, len(a.tags[s]))
		copy(nts, a.tags[s])
		out.tags[s] = nts
	}
	remap := func(e *Entry) *Entry {
		if e == nil {
			return nil
		}
		return &out.frames[e.set][e.way]
	}
	return out, remap
}

// CloneInto overwrites dst — an array of the same geometry, previously
// produced by Clone on this configuration — with a's contents, reusing
// dst's frame and tag storage. Returns the remap function into dst.
func (a *Array) CloneInto(dst *Array) func(*Entry) *Entry {
	dst.sets, dst.ways = a.sets, a.ways
	dst.occupied, dst.lruTick = a.occupied, a.lruTick
	if len(dst.frames) != len(a.frames) {
		dst.frames = make([][]Entry, len(a.frames))
		dst.tags = make([][]mem.Line, len(a.frames))
	}
	for s, fs := range a.frames {
		if fs == nil {
			dst.frames[s], dst.tags[s] = nil, nil
			continue
		}
		if len(dst.frames[s]) != len(fs) {
			dst.frames[s] = make([]Entry, len(fs))
			dst.tags[s] = make([]mem.Line, len(fs))
		}
		copy(dst.frames[s], fs)
		copy(dst.tags[s], a.tags[s])
	}
	return func(e *Entry) *Entry {
		if e == nil {
			return nil
		}
		return &dst.frames[e.set][e.way]
	}
}

// Clone returns a deep copy of the MSHR file and a remap function from
// entries of the original to entries of the copy. clonePayload rewrites
// each live entry's Payload (the coherence layer stores transaction
// state there); nil shares payloads.
func (f *MSHRFile) Clone(clonePayload func(any) any) (*MSHRFile, func(*MSHR) *MSHR) {
	out := &MSHRFile{
		entries:  make([]MSHR, len(f.entries)),
		index:    make(map[mem.Line][]*MSHR, len(f.index)),
		capacity: f.capacity,
		reserved: f.reserved,
		inUse:    f.inUse,
		resInUse: f.resInUse,
	}
	copy(out.entries, f.entries)
	if clonePayload != nil {
		for i := range out.entries {
			if out.entries[i].valid {
				out.entries[i].Payload = clonePayload(out.entries[i].Payload)
			}
		}
	}
	remap := func(m *MSHR) *MSHR {
		if m == nil {
			return nil
		}
		for i := range f.entries {
			if &f.entries[i] == m {
				return &out.entries[i]
			}
		}
		panic("cache: remapping MSHR foreign to the cloned file")
	}
	//wbsim:nondet -- per-key rebuild; remap is a pure pointer translation
	for l, es := range f.index {
		nes := make([]*MSHR, len(es))
		for i, e := range es {
			nes[i] = remap(e)
		}
		out.index[l] = nes
	}
	return out, remap
}

// CloneInto overwrites dst — a file of the same capacity — with f's
// contents, reusing dst's entry and index storage. Invalid entries get a
// nil payload so dst never retains a stale pointer into the source.
// universe, when non-nil, must contain every line the file can index
// (the model checker's fixed line set); it replaces the index-map
// iterations with ordered lookups, which is cheaper for the tiny maps
// the checker clones millions of times.
func (f *MSHRFile) CloneInto(dst *MSHRFile, clonePayload func(any) any, universe []mem.Line) {
	if len(dst.entries) != len(f.entries) {
		dst.entries = make([]MSHR, len(f.entries))
	}
	copy(dst.entries, f.entries)
	dst.capacity, dst.reserved = f.capacity, f.reserved
	dst.inUse, dst.resInUse = f.inUse, f.resInUse
	for i := range dst.entries {
		if dst.entries[i].valid {
			if clonePayload != nil {
				dst.entries[i].Payload = clonePayload(dst.entries[i].Payload)
			}
		} else {
			dst.entries[i].Payload = nil
		}
	}
	remap := func(m *MSHR) *MSHR {
		for i := range f.entries {
			if &f.entries[i] == m {
				return &dst.entries[i]
			}
		}
		panic("cache: remapping MSHR foreign to the cloned file")
	}
	if universe != nil {
		indexed := 0
		for _, l := range universe {
			es, ok := f.index[l]
			if !ok {
				delete(dst.index, l)
				continue
			}
			indexed++
			nes := dst.index[l][:0]
			for _, e := range es {
				nes = append(nes, remap(e))
			}
			dst.index[l] = nes
		}
		if indexed != len(f.index) {
			panic("cache: MSHR file indexes a line outside the given universe")
		}
		return
	}
	//wbsim:nondet -- each delete decision depends only on its own key
	for l := range dst.index {
		if _, ok := f.index[l]; !ok {
			delete(dst.index, l)
		}
	}
	//wbsim:nondet -- per-key rebuild; remap is a pure pointer translation
	for l, es := range f.index {
		nes := dst.index[l][:0]
		for _, e := range es {
			nes = append(nes, remap(e))
		}
		dst.index[l] = nes
	}
}
