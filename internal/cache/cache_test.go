package cache

import (
	"testing"
	"testing/quick"

	"wbsim/internal/mem"
)

func TestArrayGeometry(t *testing.T) {
	a := NewArray(64, 8)
	if a.Sets() != 8 || a.Ways() != 8 {
		t.Fatalf("sets=%d ways=%d", a.Sets(), a.Ways())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry did not panic")
		}
	}()
	NewArray(10, 3)
}

func TestArrayInstallLookup(t *testing.T) {
	a := NewArray(16, 2)
	v := a.Victim(5, nil)
	if v == nil || v.Valid() {
		t.Fatal("fresh array must offer an invalid frame")
	}
	e := a.Install(v, 5)
	if a.Lookup(5) != e || !e.Valid() {
		t.Fatal("install/lookup mismatch")
	}
	if a.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", a.Occupancy())
	}
	a.Evict(e)
	if a.Lookup(5) != nil || e.Valid() || a.Occupancy() != 0 {
		t.Fatal("evict did not clear")
	}
}

// sameSetLines returns n distinct lines mapping to the same set as seed.
func sameSetLines(a *Array, seed mem.Line, n int) []mem.Line {
	want := a.SetIndex(seed)
	lines := []mem.Line{seed}
	for l := seed + 1; len(lines) < n; l++ {
		if a.SetIndex(l) == want {
			lines = append(lines, l)
		}
	}
	return lines
}

func TestArrayLRUVictim(t *testing.T) {
	a := NewArray(4, 2) // 2 sets, 2 ways
	ls := sameSetLines(a, 0, 3)
	e0 := a.Install(a.Victim(ls[0], nil), ls[0])
	e1 := a.Install(a.Victim(ls[1], nil), ls[1])
	// Touch the first so the second becomes LRU.
	a.Touch(e0)
	v := a.Victim(ls[2], nil) // set full: LRU victim
	if v != e1 {
		t.Fatalf("victim holds %v, want %v", v.Line, e1.Line)
	}
}

func TestArrayVictimKeep(t *testing.T) {
	a := NewArray(4, 2)
	ls := sameSetLines(a, 0, 3)
	a.Install(a.Victim(ls[0], nil), ls[0])
	a.Install(a.Victim(ls[1], nil), ls[1])
	// Keep everything: no victim available.
	if v := a.Victim(ls[2], func(*Entry) bool { return true }); v != nil {
		t.Fatal("keep-all should yield no victim")
	}
	// Keep only the first: the second's frame is the only candidate.
	v := a.Victim(ls[2], func(e *Entry) bool { return e.Line == ls[0] })
	if v == nil || v.Line != ls[1] {
		t.Fatal("keep predicate ignored")
	}
}

func TestArrayInstallPanics(t *testing.T) {
	a := NewArray(4, 2)
	e := a.Install(a.Victim(0, nil), 0)
	t.Run("valid frame", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("double install did not panic")
			}
		}()
		a.Install(e, 4)
	})
	t.Run("wrong set", func(t *testing.T) {
		// Find a line mapping to the other set.
		other := mem.Line(1)
		for a.SetIndex(other) == a.SetIndex(0) {
			other++
		}
		v := a.Victim(other, nil)
		defer func() {
			if recover() == nil {
				t.Fatal("cross-set install did not panic")
			}
		}()
		a.Install(v, 0)
	})
}

func TestArrayForEach(t *testing.T) {
	a := NewArray(8, 2)
	for l := mem.Line(0); l < 4; l++ {
		a.Install(a.Victim(l, nil), l)
	}
	seen := map[mem.Line]bool{}
	a.ForEach(func(e *Entry) { seen[e.Line] = true })
	if len(seen) != 4 {
		t.Fatalf("ForEach visited %d", len(seen))
	}
}

// TestArrayProperty exercises random install/evict sequences, checking
// that lookup always agrees with the set of installed lines and capacity
// is never exceeded.
func TestArrayProperty(t *testing.T) {
	if err := quick.Check(func(ops []uint8) bool {
		a := NewArray(32, 4)
		live := map[mem.Line]bool{}
		for _, op := range ops {
			line := mem.Line(op % 64)
			if e := a.Lookup(line); e != nil {
				if !live[line] {
					return false
				}
				a.Evict(e)
				delete(live, line)
				continue
			}
			if live[line] {
				return false
			}
			v := a.Victim(line, nil)
			if v == nil {
				return false // no keep predicate: must always find one
			}
			if v.Valid() {
				delete(live, v.Line)
				a.Evict(v)
			}
			a.Install(v, line)
			live[line] = true
		}
		return a.Occupancy() == len(live) && a.Occupancy() <= 32
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMSHRBasics(t *testing.T) {
	f := NewMSHRFile(4, 1)
	if f.Capacity() != 4 {
		t.Fatalf("capacity = %d", f.Capacity())
	}
	m1 := f.Allocate(10)
	m2 := f.Allocate(20)
	m3 := f.Allocate(30)
	if m1 == nil || m2 == nil || m3 == nil {
		t.Fatal("normal allocations failed")
	}
	// Normal pool (3 of 4) exhausted.
	if f.Allocate(40) != nil {
		t.Fatal("normal pool over-allocated into the reserve")
	}
	if !f.FullForNormal() {
		t.Fatal("FullForNormal false with full normal pool")
	}
	// The reserved entry is still available for a SoS load.
	r := f.AllocateReserved(40)
	if r == nil || !r.Reserved {
		t.Fatal("reserved allocation failed")
	}
	if f.AllocateReserved(50) != nil {
		t.Fatal("over-allocated beyond capacity")
	}
	f.Free(m2)
	if f.InUse() != 3 {
		t.Fatalf("in use = %d", f.InUse())
	}
	if f.Allocate(50) == nil {
		t.Fatal("freed entry not reusable")
	}
}

func TestMSHRLookup(t *testing.T) {
	f := NewMSHRFile(8, 2)
	a := f.Allocate(5)
	b := f.AllocateReserved(5) // second MSHR on the same line (SoS bypass)
	if f.Lookup(5) != a {
		t.Fatal("Lookup should return the oldest")
	}
	all := f.LookupAll(5)
	if len(all) != 2 || all[0] != a || all[1] != b {
		t.Fatalf("LookupAll = %v", all)
	}
	f.Free(a)
	if f.Lookup(5) != b {
		t.Fatal("Lookup after free")
	}
	f.Free(b)
	if f.Lookup(5) != nil {
		t.Fatal("Lookup after all freed")
	}
}

func TestMSHRReservedNotUsedWhenFree(t *testing.T) {
	f := NewMSHRFile(4, 1)
	r := f.AllocateReserved(1)
	if r.Reserved {
		t.Fatal("reserved pool used while normal space remains")
	}
}

func TestMSHRFreePanics(t *testing.T) {
	f := NewMSHRFile(2, 1)
	m := f.Allocate(1)
	f.Free(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	f.Free(m)
}

// TestMSHRProperty drives random allocate/free traffic and checks the
// partitioning invariant: normal allocations never encroach on the
// reserve, and a reserved allocation succeeds whenever any entry is free.
func TestMSHRProperty(t *testing.T) {
	if err := quick.Check(func(ops []uint8) bool {
		f := NewMSHRFile(8, 2)
		var live []*MSHR
		normalUsed := func() int {
			n := 0
			for _, m := range live {
				if !m.Reserved {
					n++
				}
			}
			return n
		}
		for _, op := range ops {
			switch {
			case op%3 == 0 && len(live) > 0:
				f.Free(live[0])
				live = live[1:]
			case op%3 == 1:
				m := f.Allocate(mem.Line(op))
				if m == nil {
					if normalUsed() < 6 {
						return false // normal pool should have had room
					}
				} else {
					if m.Reserved {
						return false // Allocate must never touch the reserve
					}
					live = append(live, m)
				}
			default:
				m := f.AllocateReserved(mem.Line(op))
				if m == nil {
					if f.InUse() < 8 {
						return false // reserve must succeed if space exists
					}
				} else {
					live = append(live, m)
				}
			}
			if f.InUse() != len(live) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}
