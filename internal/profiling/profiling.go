// Package profiling wires the standard Go profilers into the simulator
// commands. Every binary gets the same three flags (-cpuprofile,
// -memprofile, -trace) registered through AddFlags, and a single
// Start/stop pair that owns the file handles, so the commands don't each
// reimplement the boilerplate (or drift in how they do it).
//
// It also owns the collector tuning the simulator wants: the hot loop
// allocates instruction-window slabs that die in bulk when a run
// finishes, and the default GOGC target makes the collector re-scan that
// pointer-rich heap far too eagerly. TuneGC widens the target unless the
// user set GOGC themselves.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the output paths parsed from the command line. Zero-value
// paths mean the corresponding profiler stays off.
type Flags struct {
	CPUProfile string
	MemProfile string
	TracePath  string
}

// AddFlags registers -cpuprofile, -memprofile and -trace on the default
// flag set. Call before flag.Parse.
func AddFlags() *Flags {
	f := &Flags{}
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write CPU profile to `file`")
	flag.StringVar(&f.MemProfile, "memprofile", "", "write heap profile to `file` at exit")
	flag.StringVar(&f.TracePath, "trace", "", "write runtime execution trace to `file`")
	return f
}

// Start begins whichever profilers were requested and returns the
// function that stops them and flushes the output files. The returned
// stop is never nil and is safe to call when nothing was enabled; run it
// via defer on every exit path that should produce usable profiles.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile, traceFile *os.File

	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if f.TracePath != "" {
		traceFile, err = os.Create(f.TracePath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("trace: %w", err)
		}
	}

	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer mf.Close()
			runtime.GC() // materialize the steady-state live set
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}

// TuneGC raises the collector's heap-growth target for the simulator
// commands. Simulation output is a pure function of (config, workload,
// seed), so collector pacing can never change a result — only how much
// wall-clock the collector burns re-scanning live instruction slabs. An
// explicit GOGC in the environment wins.
func TuneGC() {
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
}
