package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartStopWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{
		CPUProfile: filepath.Join(dir, "cpu.out"),
		MemProfile: filepath.Join(dir, "mem.out"),
		TracePath:  filepath.Join(dir, "trace.out"),
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Some trivial work so the profiles have something to record.
	s := 0
	for i := 0; i < 1_000_000; i++ {
		s += i
	}
	_ = s
	stop()

	for _, p := range []string{f.CPUProfile, f.MemProfile, f.TracePath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
}

func TestStartNothingEnabled(t *testing.T) {
	stop, err := (&Flags{}).Start()
	if err != nil {
		t.Fatal(err)
	}
	stop() // must be a safe no-op
}

func TestStartBadPath(t *testing.T) {
	f := &Flags{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}
	if _, err := f.Start(); err == nil {
		t.Fatal("expected error for uncreatable profile path")
	}
}
