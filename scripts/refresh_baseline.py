#!/usr/bin/env python3
"""Re-record the refreshable sections of BENCH_baseline.json and
BENCH_check.json.

Runs the end-to-end throughput benchmark (sequential and sharded
kernels) and the experiments-all wall-clock run on the current tree,
then rewrites the corresponding entries of BENCH_baseline.json in
place:

  benchmarks.BenchmarkSimulatorThroughput   per-shard ns/op, B/op,
                                            allocs/op, sim-cycles/op and
                                            the sim_cycles_per_sec
                                            headline (shards=1)
  benchmarks.BenchmarkDirDispatchProtocols  per-protocol dispatch rows —
                                            one per coherence-registry
                                            entry (base, base-ns, wb,
                                            wb-ns, tardis, ...); a newly
                                            registered protocol gains a
                                            row on the next refresh with
                                            no script edits
  wall_clock.experiments_all_c4s1           real/user seconds

by_shards entries are only recorded for shard counts the host can
actually run in parallel (shards <= cpu count), and every entry is
stamped with the recording host's CPU count — a shards=4 number from a
1-vCPU box is measurement noise, not a baseline.

With --check, re-records BENCH_check.json instead: every model-checker
exploration config (states, wall, states/sec, peak RSS, reduction
factors), taking the best wall time of --check-runs runs (the 1-vCPU CI
host jitters ~±20%). The PR-7 pre-reduction baseline block inside
BENCH_check.json is never touched — it is the reference the bench-check
gate (scripts/checkbench_gate.py) measures speedups against.

The DirDispatch record is deliberately NOT touched: it is the
pre-refactor reference the dispatch regression gate
(scripts/dirbench_gate.py) compares against, and refreshing it would
erase the gate's meaning. The per-protocol DirDispatchProtocols rows
are the refreshable complement: the same ping-pong workload run under
every protocol in the coherence registry, recorded additively so the
longitudinal record tracks each protocol's dispatch cost without
disturbing the frozen gate reference.

Usage:
  python3 scripts/refresh_baseline.py              # benchmarks only
  python3 scripts/refresh_baseline.py --wall-clock # + experiments all (minutes)
  python3 scripts/refresh_baseline.py --check      # BENCH_check.json instead
"""

import argparse
import datetime
import json
import os
import platform
import re
import resource
import subprocess
import sys
import time

BASELINE = "BENCH_baseline.json"
CHECKFILE = "BENCH_check.json"
BENCH_RE = re.compile(
    r"^BenchmarkSimulatorThroughput/shards=(\d+)\S*\s+\d+\s+(\d+) ns/op"
    r"\s+(\d+) sim-cycles/op\s+(\d+) sim-cycles/sec\s+(\d+) B/op\s+(\d+) allocs/op",
    re.M,
)
PROTO_BENCH_RE = re.compile(
    r"^BenchmarkDirDispatchProtocols/(\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op"
    r"\s+(\d+) B/op\s+(\d+) allocs/op",
    re.M,
)


def run(cmd):
    print("+ " + " ".join(cmd), file=sys.stderr)
    return subprocess.run(cmd, check=True, capture_output=True, text=True)


def bench_throughput():
    out = run([
        "go", "test", "-count=1", "-run", "^$",
        "-bench", "SimulatorThroughput", "-benchtime", "3x", "-benchmem", ".",
    ]).stdout
    cpus = os.cpu_count()
    shards = {}
    for m in BENCH_RE.finditer(out):
        n = int(m.group(1))
        if n > cpus:
            # A shards=N time from a host with fewer than N CPUs measures
            # goroutine context-switch overhead, not sharded throughput
            # (the anomaly that made shards=4 read slower than shards=1
            # in the original baseline). Refuse to record it.
            print("refresh_baseline: skipping shards=%d (host has %d CPUs)"
                  % (n, cpus), file=sys.stderr)
            continue
        shards["shards=" + str(n)] = {
            "ns_per_op": int(m.group(2)),
            "sim_cycles_per_op": int(m.group(3)),
            "sim_cycles_per_sec": int(m.group(4)),
            "bytes_per_op": int(m.group(5)),
            "allocs_per_op": int(m.group(6)),
            "cpus": cpus,
        }
    if "shards=1" not in shards:
        sys.exit("refresh_baseline: no shards=1 result in benchmark output:\n" + out)
    return shards


def bench_dispatch_protocols(runs=3):
    """Per-protocol dispatch rows: the registry-driven benchmark emits one
    sub-benchmark per registered coherence protocol; medians over `runs`
    repetitions. Additive — the frozen BenchmarkDirDispatch gate record
    is never touched."""
    rows = {}
    for _ in range(runs):
        out = run([
            "go", "test", "-count=1", "-run", "^$",
            "-bench", "DirDispatchProtocols", "-benchtime", "200x",
            "-benchmem", "./internal/coherence",
        ]).stdout
        for m in PROTO_BENCH_RE.finditer(out):
            rows.setdefault(m.group(1), []).append(
                (float(m.group(2)), int(m.group(3)), int(m.group(4))))
    if not rows:
        sys.exit("refresh_baseline: no DirDispatchProtocols results")

    def median(vals):
        vals = sorted(vals)
        return vals[len(vals) // 2]

    return {
        name: {
            "ns_per_op": int(median([s[0] for s in samples])),
            "bytes_per_op": median([s[1] for s in samples]),
            "allocs_per_op": median([s[2] for s in samples]),
        }
        for name, samples in rows.items()
    }


# ---------------------------------------------------------------------
# BENCH_check.json: the model-checker exploration record
# ---------------------------------------------------------------------

# Every recorded exploration. Key -> wbsimcheck arguments. The heavy
# exhaustive 3c/2b/2l closures only run with --deep (minutes each).
CHECK_CONFIGS = {
    "1c_2l_2ops": ["-cores", "1", "-banks", "1", "-lines", "2", "-ops", "2"],
    "1c_2l_3ops": ["-cores", "1", "-banks", "1", "-lines", "2", "-ops", "3"],
    "2c_1l_squash_gate": ["-cores", "2", "-banks", "1", "-lines", "1", "-ops", "2"],
    "2c_1l_lockdown_gate": ["-cores", "2", "-banks", "1", "-lines", "1", "-ops", "2",
                            "-mode", "lockdown", "-lockdowns", "1"],
    "2c_2l_deep": ["-cores", "2", "-banks", "1", "-lines", "2", "-ops", "2"],
    "2c_2l_deep_sym": ["-cores", "2", "-banks", "1", "-lines", "2", "-ops", "2",
                       "-reduce", "sym"],
    "2c_2l_deep_sym_por": ["-cores", "2", "-banks", "1", "-lines", "2", "-ops", "2",
                           "-reduce", "sym,por"],
    "3c_2b_2l_capped_gate": ["-cores", "3", "-banks", "2", "-lines", "2", "-ops", "2",
                             "-max-states", "50000"],
    "1c_2l_prefix_deadlock": ["-cores", "1", "-banks", "1", "-lines", "2", "-ops", "2",
                              "-prefix"],
}
DEEP_CHECK_CONFIGS = {
    "3c_2b_2l_deep_sym_por": ["-cores", "3", "-banks", "2", "-lines", "2", "-ops", "2",
                              "-reduce", "sym,por"],
}


def run_check(binary, args, runs):
    """Run one wbsimcheck config `runs` times; keep the fastest wall."""
    best = None
    for _ in range(runs):
        p = subprocess.run([binary] + args + ["-json"],
                           capture_output=True, text=True)
        if p.returncode not in (0, 1):  # 1 = violation/trap found (expected for -prefix)
            sys.exit("refresh_baseline: wbsimcheck %s failed:\n%s"
                     % (" ".join(args), p.stderr))
        rep = json.loads(p.stdout)
        if best is None or rep["wall_ms"] < best["wall_ms"]:
            best = rep
    return best


def check_entry(key, args, rep):
    res = rep["result"]
    entry = {
        "cmd": "wbsimcheck " + " ".join(args),
        "states": res["States"],
        "transitions": res["Transitions"],
        "terminals": res["Terminals"],
        "max_depth": res["MaxDepth"],
        "exhaustive": res["Exhaustive"],
        "passed": rep["passed"],
        "wall_ms": round(rep["wall_ms"], 1),
        "states_per_sec": int(rep["states_per_sec"]),
        "workers": rep["workers"],
        "reduce": rep["reduce"],
    }
    if rep.get("peak_rss_kb"):
        entry["peak_rss_kb"] = rep["peak_rss_kb"]
    if res.get("SymmetryGroup", 1) > 1:
        entry["symmetry_group"] = res["SymmetryGroup"]
    if res.get("DeferredEdges", 0) > 0:
        entry["deferred_edges"] = res["DeferredEdges"]
    if res.get("Trap"):
        entry["trap"] = "%s at depth %d" % (res["Trap"]["Kind"], res["MaxDepth"])
    return entry


def refresh_check(deep, runs):
    with open(CHECKFILE) as f:
        doc = json.load(f)

    subprocess.run(["go", "build", "-o", "/tmp/wbsimcheck-refresh",
                    "./cmd/wbsimcheck"], check=True)
    binary = "/tmp/wbsimcheck-refresh"

    configs = dict(CHECK_CONFIGS)
    if deep:
        configs.update(DEEP_CHECK_CONFIGS)
    explorations = doc.setdefault("explorations", {})
    reports = {}
    for key, args in configs.items():
        rep = run_check(binary, args, 1 if "3c" in key or deep else runs)
        reports[key] = rep
        explorations[key] = check_entry(key, args, rep)
        print("  %s: %d states in %.0fms (%d states/sec)"
              % (key, rep["result"]["States"], rep["wall_ms"],
                 rep["states_per_sec"]), file=sys.stderr)

    # Reduction summary on the 2c/2l deep config: factors per technique
    # and the effective speedup vs the frozen PR-7 baseline (effective
    # rate = full-space states the run stands for, per second).
    base = doc.get("baseline_pr7", {}).get("2c_2l_deep")
    full = reports.get("2c_2l_deep")
    sym = reports.get("2c_2l_deep_sym")
    sympor = reports.get("2c_2l_deep_sym_por")
    if base and full and sym and sympor:
        full_states = full["result"]["States"]
        eff_sym = full_states / (sym["wall_ms"] / 1000.0)
        eff_sympor = full_states / (sympor["wall_ms"] / 1000.0)
        # At this small geometry POR's diamond bookkeeping can outweigh
        # its savings (it pays off at 3c/2b/2l, where it defers ~1.5M
        # expansions); the headline is the best reduced mode.
        eff = max(eff_sym, eff_sympor)
        doc["reductions_2c_2l"] = {
            "full_states": full_states,
            "canonical_states": sym["result"]["States"],
            "symmetry_factor": round(full_states / sym["result"]["States"], 2),
            "por_deferred_edges": sympor["result"].get("DeferredEdges", 0),
            "raw_states_per_sec_full": int(full["states_per_sec"]),
            "effective_states_per_sec_sym": int(eff_sym),
            "effective_states_per_sec_sym_por": int(eff_sympor),
            "speedup_vs_pr7_full": round(
                full["states_per_sec"] / base["states_per_sec"], 1),
            "speedup_vs_pr7_effective": round(
                eff / base["states_per_sec"], 1),
            "note": "effective rate = full-space states the reduced run "
                    "stands for / wall; speedups measured against the "
                    "frozen PR-7 single-worker no-reduction baseline; "
                    "the effective speedup is the best reduced mode",
        }

    doc["recorded"] = datetime.date.today().isoformat()
    doc["machine"]["go"] = run(["go", "env", "GOVERSION"]).stdout.strip()
    doc["machine"]["cpus"] = os.cpu_count()
    with open(CHECKFILE, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print("updated %s" % CHECKFILE, file=sys.stderr)


def wall_clock_experiments():
    before = time.monotonic()
    run(["go", "run", "./cmd/experiments", "all", "-cores", "4", "-scale", "1"])
    real = time.monotonic() - before
    user = resource.getrusage(resource.RUSAGE_CHILDREN).ru_utime
    return round(real, 1), round(user, 1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--wall-clock", action="store_true",
                    help="also re-record the experiments-all wall clock (minutes)")
    ap.add_argument("--check", action="store_true",
                    help="re-record BENCH_check.json (model checker) instead")
    ap.add_argument("--deep", action="store_true",
                    help="with --check: include the exhaustive 3c/2b/2l closure (minutes)")
    ap.add_argument("--check-runs", type=int, default=3,
                    help="with --check: runs per config; fastest wall is recorded")
    args = ap.parse_args()

    if args.check:
        refresh_check(args.deep, args.check_runs)
        return

    with open(BASELINE) as f:
        doc = json.load(f)

    today = datetime.date.today().isoformat()
    gover = run(["go", "env", "GOVERSION"]).stdout.strip()
    shards = bench_throughput()
    head = shards["shards=1"]
    # Per-protocol dispatch rows, keyed by registry name. Recorded next
    # to — never instead of — the frozen BenchmarkDirDispatch reference
    # that scripts/dirbench_gate.py measures regressions against.
    doc["benchmarks"]["BenchmarkDirDispatchProtocols"] = {
        "cmd": "go test -count=1 -run '^$' -bench DirDispatchProtocols "
               "-benchtime 200x -benchmem ./internal/coherence (median of 3)",
        "recorded": today,
        "note": "one row per coherence-registry protocol; the same "
                "ping-pong workload as the frozen DirDispatch gate record. "
                "tardis ns/op includes the cycles writes spend waiting out "
                "read leases — protocol cost, not harness overhead.",
        "rows": bench_dispatch_protocols(),
    }
    doc["benchmarks"]["BenchmarkSimulatorThroughput"] = {
        "cmd": "go test -count=1 -run '^$' -bench SimulatorThroughput -benchmem -benchtime=3x .",
        "recorded": today,
        "ns_per_op": head["ns_per_op"],
        "sim_cycles_per_op": head["sim_cycles_per_op"],
        "sim_cycles_per_sec": head["sim_cycles_per_sec"],
        "bytes_per_op": head["bytes_per_op"],
        "allocs_per_op": head["allocs_per_op"],
        "by_shards": shards,
    }

    if args.wall_clock:
        real, user = wall_clock_experiments()
        wc = doc["wall_clock"]["experiments_all_c4s1"]
        wc["real_s"], wc["user_s"] = real, user
        wc["recorded"] = today

    doc["machine"]["go"] = gover
    doc["machine"]["cpus"] = __import__("os").cpu_count()
    doc["machine"]["goarch"] = platform.machine().replace("x86_64", "amd64")

    with open(BASELINE, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print("updated %s (recorded %s)" % (BASELINE, today), file=sys.stderr)


if __name__ == "__main__":
    main()
