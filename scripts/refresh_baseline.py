#!/usr/bin/env python3
"""Re-record the refreshable sections of BENCH_baseline.json.

Runs the end-to-end throughput benchmark (sequential and sharded
kernels) and the experiments-all wall-clock run on the current tree,
then rewrites the corresponding entries of BENCH_baseline.json in
place:

  benchmarks.BenchmarkSimulatorThroughput   per-shard ns/op, B/op,
                                            allocs/op, sim-cycles/op and
                                            the sim_cycles_per_sec
                                            headline (shards=1)
  wall_clock.experiments_all_c4s1           real/user seconds

The DirDispatch record is deliberately NOT touched: it is the
pre-refactor reference the dispatch regression gate
(scripts/dirbench_gate.py) compares against, and refreshing it would
erase the gate's meaning.

Usage:
  python3 scripts/refresh_baseline.py              # benchmarks only
  python3 scripts/refresh_baseline.py --wall-clock # + experiments all (minutes)
"""

import argparse
import datetime
import json
import platform
import re
import resource
import subprocess
import sys
import time

BASELINE = "BENCH_baseline.json"
BENCH_RE = re.compile(
    r"^BenchmarkSimulatorThroughput/shards=(\d+)\S*\s+\d+\s+(\d+) ns/op"
    r"\s+(\d+) sim-cycles/op\s+(\d+) sim-cycles/sec\s+(\d+) B/op\s+(\d+) allocs/op",
    re.M,
)


def run(cmd):
    print("+ " + " ".join(cmd), file=sys.stderr)
    return subprocess.run(cmd, check=True, capture_output=True, text=True)


def bench_throughput():
    out = run([
        "go", "test", "-count=1", "-run", "^$",
        "-bench", "SimulatorThroughput", "-benchtime", "3x", "-benchmem", ".",
    ]).stdout
    shards = {}
    for m in BENCH_RE.finditer(out):
        shards["shards=" + m.group(1)] = {
            "ns_per_op": int(m.group(2)),
            "sim_cycles_per_op": int(m.group(3)),
            "sim_cycles_per_sec": int(m.group(4)),
            "bytes_per_op": int(m.group(5)),
            "allocs_per_op": int(m.group(6)),
        }
    if "shards=1" not in shards:
        sys.exit("refresh_baseline: no shards=1 result in benchmark output:\n" + out)
    return shards


def wall_clock_experiments():
    before = time.monotonic()
    run(["go", "run", "./cmd/experiments", "all", "-cores", "4", "-scale", "1"])
    real = time.monotonic() - before
    user = resource.getrusage(resource.RUSAGE_CHILDREN).ru_utime
    return round(real, 1), round(user, 1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--wall-clock", action="store_true",
                    help="also re-record the experiments-all wall clock (minutes)")
    args = ap.parse_args()

    with open(BASELINE) as f:
        doc = json.load(f)

    today = datetime.date.today().isoformat()
    gover = run(["go", "env", "GOVERSION"]).stdout.strip()
    shards = bench_throughput()
    head = shards["shards=1"]
    doc["benchmarks"]["BenchmarkSimulatorThroughput"] = {
        "cmd": "go test -count=1 -run '^$' -bench SimulatorThroughput -benchmem -benchtime=3x .",
        "recorded": today,
        "ns_per_op": head["ns_per_op"],
        "sim_cycles_per_op": head["sim_cycles_per_op"],
        "sim_cycles_per_sec": head["sim_cycles_per_sec"],
        "bytes_per_op": head["bytes_per_op"],
        "allocs_per_op": head["allocs_per_op"],
        "by_shards": shards,
    }

    if args.wall_clock:
        real, user = wall_clock_experiments()
        wc = doc["wall_clock"]["experiments_all_c4s1"]
        wc["real_s"], wc["user_s"] = real, user
        wc["recorded"] = today

    doc["machine"]["go"] = gover
    doc["machine"]["cpus"] = __import__("os").cpu_count()
    doc["machine"]["goarch"] = platform.machine().replace("x86_64", "amd64")

    with open(BASELINE, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print("updated %s (recorded %s)" % (BASELINE, today), file=sys.stderr)


if __name__ == "__main__":
    main()
