#!/usr/bin/env python3
"""Model-checker throughput regression gate (`make bench-check`).

Re-runs the gate explorations and compares states/sec against the
records in BENCH_check.json. A run more than BUDGET below its recorded
rate fails the gate; counters (states/transitions/terminals/depth) must
match exactly — they are machine-independent, so any drift is a
correctness bug, not noise.

The budget mirrors the dispatch gate's reasoning (scripts/
dirbench_gate.py): shared-runner wall times jitter ~±20% run to run
even taking the best of three, so the gate triggers at a 35% deficit —
wide enough to ride out scheduler noise, tight enough to catch a real
regression (the reductions this gate protects bought 10× and a
collapse back would read as ~90% deficit).

Usage: python3 scripts/checkbench_gate.py [--runs N]
"""

import argparse
import json
import subprocess
import sys

CHECKFILE = "BENCH_check.json"
BUDGET = 0.35  # fail when states/sec drops more than this below the record

# Gate configs: the headline deep exploration in raw and fully-reduced
# form. Keys must exist in BENCH_check.json explorations.
GATES = {
    "2c_2l_deep": ["-cores", "2", "-banks", "1", "-lines", "2", "-ops", "2"],
    "2c_2l_deep_sym_por": ["-cores", "2", "-banks", "1", "-lines", "2",
                           "-ops", "2", "-reduce", "sym,por"],
}
COUNTERS = ("States", "Transitions", "Terminals", "MaxDepth")


def best_of(binary, args, runs):
    best = None
    for _ in range(runs):
        p = subprocess.run([binary] + args + ["-json"],
                           capture_output=True, text=True)
        if p.returncode != 0:
            sys.exit("bench-check: wbsimcheck %s failed (rc=%d):\n%s"
                     % (" ".join(args), p.returncode, p.stderr))
        rep = json.loads(p.stdout)
        if best is None or rep["wall_ms"] < best["wall_ms"]:
            best = rep
    return best


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--runs", type=int, default=3,
                    help="runs per config; fastest wall is compared")
    args = ap.parse_args()

    with open(CHECKFILE) as f:
        doc = json.load(f)

    subprocess.run(["go", "build", "-o", "/tmp/wbsimcheck-gate",
                    "./cmd/wbsimcheck"], check=True)

    failed = False
    for key, flags in GATES.items():
        rec = doc["explorations"].get(key)
        if rec is None:
            sys.exit("bench-check: no %r record in %s — run "
                     "scripts/refresh_baseline.py --check first" % (key, CHECKFILE))
        rep = best_of("/tmp/wbsimcheck-gate", flags, args.runs)
        res = rep["result"]

        got = {"States": res["States"], "Transitions": res["Transitions"],
               "Terminals": res["Terminals"], "MaxDepth": res["MaxDepth"]}
        want = {"States": rec["states"], "Transitions": rec["transitions"],
                "Terminals": rec["terminals"], "MaxDepth": rec["max_depth"]}
        if got != want:
            print("FAIL %s: exploration counters drifted (determinism bug, "
                  "not a perf issue): got %s want %s" % (key, got, want))
            failed = True
            continue

        rate, ref = rep["states_per_sec"], rec["states_per_sec"]
        deficit = 1.0 - rate / ref
        verdict = "ok"
        if deficit > BUDGET:
            verdict = "FAIL"
            failed = True
        print("%s %s: %d states/sec vs %d recorded (%+.0f%%, budget -%d%%)"
              % (verdict, key, rate, ref, -deficit * 100, BUDGET * 100))

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
