#!/usr/bin/env python3
"""Gate the directory/PCU dispatch microbenchmark against the
pre-refactor record in BENCH_baseline.json.

Usage: dirbench_gate.py <go-bench-output-file>

Reads every `BenchmarkDirDispatch` result line from the given `go test
-bench` output (run it with -count=N so the median is meaningful),
takes the median of each metric, and compares it to
benchmarks.BenchmarkDirDispatch in BENCH_baseline.json. Exits 1 if any
metric regressed more than its threshold: 10% for B/op and allocs/op
(deterministic in this simulator), 35% for ns/op (shared CI runners
jitter wall-clock far more than the 10% design budget; the allocation
gates are the load-bearing check, and ns/op medians well outside noise
still fail).
"""

import json
import re
import statistics
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    ns, bop, allocs = [], [], []
    pat = re.compile(
        r"^BenchmarkDirDispatch\b.*?(\d+(?:\.\d+)?) ns/op\s+(\d+) B/op\s+(\d+) allocs/op"
    )
    with open(sys.argv[1]) as f:
        for line in f:
            m = pat.match(line)
            if m:
                ns.append(float(m.group(1)))
                bop.append(int(m.group(2)))
                allocs.append(int(m.group(3)))
    if not ns:
        print("dirbench_gate: no BenchmarkDirDispatch results in input", file=sys.stderr)
        return 2

    with open("BENCH_baseline.json") as f:
        base = json.load(f)["benchmarks"]["BenchmarkDirDispatch"]

    checks = [
        ("ns/op", statistics.median(ns), base["ns_per_op"], 0.35),
        ("B/op", statistics.median(bop), base["bytes_per_op"], 0.10),
        ("allocs/op", statistics.median(allocs), base["allocs_per_op"], 0.10),
    ]
    failed = False
    for name, now, ref, budget in checks:
        delta = (now - ref) / ref
        status = "ok"
        if delta > budget:
            status = "FAIL"
            failed = True
        print(
            f"dir-dispatch {name:10s} baseline {ref:>10.0f}  now {now:>10.0f}  "
            f"{delta:+7.1%} (budget +{budget:.0%})  {status}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
