package wbsim_test

import (
	"os"
	"strings"
	"testing"

	"wbsim/internal/core"
)

// TestREADMEProtocolTable pins the README's protocol table to the
// registry: the block between the protocol-table markers must be
// core.ProtocolTable() verbatim. Registering, renaming, or redescribing
// a protocol therefore forces the README row to follow — the
// documentation is generated from the same descriptors every other
// consumer iterates, it cannot drift.
func TestREADMEProtocolTable(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(data)
	const begin = "<!-- protocol-table:begin"
	const end = "<!-- protocol-table:end -->"
	i := strings.Index(readme, begin)
	j := strings.Index(readme, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md protocol-table markers missing or out of order (begin=%d end=%d)", i, j)
	}
	block := readme[i:j]
	nl := strings.Index(block, "\n")
	if nl < 0 {
		t.Fatal("no newline after the begin marker")
	}
	got := block[nl+1:]
	if want := core.ProtocolTable(); got != want {
		t.Errorf("README protocol table is out of sync with the registry.\n-- README --\n%s\n-- core.ProtocolTable() --\n%s\npaste the second block between the markers", got, want)
	}
}
