package wbsim_test

// Golden-output gate for the event-driven simulation kernel: the
// command-line tools must produce byte-identical stdout to the goldens
// captured from the tree *before* the kernel rework (testdata/golden_*,
// see BENCH_baseline.json for their provenance). Idle-skip scheduling,
// the zero-alloc mesh, and every allocation-shaving change in between
// are pure performance work; a single changed byte here means a changed
// simulated outcome, which is a correctness bug by definition.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

func checkGolden(t *testing.T, golden, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = nil // engine reports carry wall-clock times; stdout is the artifact
	got, err := cmd.Output()
	if err != nil {
		t.Fatalf("%s %v: %v", filepath.Base(bin), args, err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", golden))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (%d bytes got, %d want); the kernel changed a simulated outcome",
			golden, len(got), len(want))
	}
}

func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the command-line tools")
	}
	dir := t.TempDir()
	tsosim := buildTool(t, dir, "tsosim")
	litmus := buildTool(t, dir, "litmus")

	t.Run("tsosim_fft_lucb_c4s1", func(t *testing.T) {
		checkGolden(t, "golden_tsosim_fft_lucb_c4s1.txt", tsosim,
			"-workload", "fft,lu_cb", "-cores", "4", "-scale", "1")
	})
	t.Run("litmus_suite_s2", func(t *testing.T) {
		checkGolden(t, "golden_litmus_s2.txt", litmus,
			"-variants", "inorder-base,inorder-wb,ooo-base,ooo-wb", "-seeds", "2")
	})
	t.Run("chaos_s2", func(t *testing.T) {
		checkGolden(t, "golden_chaos_s2.txt", litmus,
			"-chaos", "-seeds", "2", "-variants", "inorder-wb,ooo-wb")
	})

	// The sharded kernel must hit the very same goldens, byte for byte, at
	// every shard count: parallel execution is pure performance work too.
	for _, shards := range []string{"2", "4"} {
		t.Run("tsosim_fft_lucb_c4s1_shards"+shards, func(t *testing.T) {
			checkGolden(t, "golden_tsosim_fft_lucb_c4s1.txt", tsosim,
				"-workload", "fft,lu_cb", "-cores", "4", "-scale", "1", "-shards", shards)
		})
	}
	t.Run("litmus_suite_s2_shards2", func(t *testing.T) {
		checkGolden(t, "golden_litmus_s2.txt", litmus,
			"-variants", "inorder-base,inorder-wb,ooo-base,ooo-wb", "-seeds", "2", "-shards", "2")
	})

	// The full evaluation (Figures 8/9/10, squash study, ablations) takes
	// a couple of minutes; run it via `make golden-full` or by setting
	// WBSIM_GOLDEN_FULL=1.
	t.Run("experiments_all_c4s1", func(t *testing.T) {
		if os.Getenv("WBSIM_GOLDEN_FULL") == "" {
			t.Skip("set WBSIM_GOLDEN_FULL=1 (or use `make golden-full`) to run the full-evaluation golden")
		}
		experiments := buildTool(t, dir, "experiments")
		checkGolden(t, "golden_experiments_all_c4s1.txt", experiments,
			"all", "-cores", "4", "-scale", "1")
	})
}
