// Litmus example: the paper's Table 1 experiment, live.
//
// It runs the hit-under-miss message-passing litmus test (a reader whose
// younger load hits in the cache and binds early while the older load's
// address resolves late, racing a writer that stores the two variables in
// the opposite order) under three machines:
//
//   - ooo-unsafe: out-of-order commit of reordered loads over the plain
//     directory protocol — TSO is violated (the forbidden {ra=1, rb=0}
//     outcome of Table 2 appears);
//   - ooo-base: safe out-of-order commit — correct but reordered loads
//     cannot commit;
//   - ooo-wb: the paper's WritersBlock — reordered loads commit out of
//     order AND the forbidden outcome never appears, because the
//     coherence layer delays the conflicting store.
package main

import (
	"fmt"

	"wbsim"
	"wbsim/internal/litmus"
)

func main() {
	test := litmus.MPHitUnderMiss()
	opts := wbsim.LitmusOptions{Seeds: 150, Jitter: 24}

	for _, v := range []wbsim.Variant{wbsim.OoOUnsafe, wbsim.OoOBase, wbsim.OoOWB} {
		res := wbsim.RunLitmus(test, v, opts)
		fmt.Printf("--- %s ---\n%s", v, res.String())
		switch {
		case res.Violations > 0:
			fmt.Printf("=> %d TSO violations: committing reordered loads over the base protocol is WRONG\n\n", res.Violations)
		case v == wbsim.OoOWB:
			fmt.Printf("=> no violations: WritersBlock hid every reordering (Table 2 outcome (6) is impossible)\n\n")
		default:
			fmt.Printf("=> no violations\n\n")
		}
	}
}
