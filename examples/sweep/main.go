// Sweep example: sensitivity of WritersBlock's benefit to the load-queue
// size (the paper's motivation for comparing SLM/NHM/HSW-class cores —
// "the performance of WritersBlock may be sensitive to the depth of the
// load queue").
//
// For a hit-under-miss heavy workload, the example sweeps the LQ size and
// reports the execution time of in-order commit vs OoO commit +
// WritersBlock: the relative benefit grows as the LQ lets more loads
// reorder.
package main

import (
	"fmt"
	"log"

	"wbsim"
	"wbsim/internal/core"
)

func main() {
	w, ok := wbsim.GetWorkload("blackscholes")
	if !ok {
		log.Fatal("workload missing")
	}

	fmt.Printf("%-8s %-12s %-12s %s\n", "LQ", "inorder", "ooo-wb", "speedup")
	for _, lq := range []int{4, 8, 16, 24, 32} {
		var cycles [2]uint64
		for i, v := range []wbsim.Variant{wbsim.InOrderBase, wbsim.OoOWB} {
			cc := core.CoreConfig(core.SLM)
			cc.LQSize = lq
			cfg := wbsim.DefaultConfig(wbsim.SLM, v)
			cfg.Cores = 8
			cfg.CoreOverride = &cc
			_, res, err := wbsim.RunWorkload(w, cfg, 1)
			if err != nil {
				log.Fatal(err)
			}
			cycles[i] = uint64(res.Cycles)
		}
		fmt.Printf("%-8d %-12d %-12d %.2fx\n", lq, cycles[0], cycles[1],
			float64(cycles[0])/float64(cycles[1]))
	}
}
