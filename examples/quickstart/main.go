// Quickstart: build a 4-core machine, write a tiny parallel program in
// the simulator's ISA (each core atomically increments a shared counter
// 100 times), run it under the paper's OoO-commit + WritersBlock variant,
// and print the results.
package main

import (
	"fmt"
	"log"

	"wbsim"
	"wbsim/internal/isa"
	"wbsim/internal/mem"
)

func main() {
	const (
		cores   = 4
		rounds  = 100
		counter = mem.Addr(0x1000)
	)

	// One program per core: a fetch-add loop on the shared counter plus
	// some private work to create memory-level parallelism.
	programs := make([]*isa.Program, cores)
	for id := 0; id < cores; id++ {
		b := wbsim.NewProgramBuilder(fmt.Sprintf("quickstart.%d", id))
		b.MovImm(1, mem.Word(counter))
		b.MovImm(2, 1)
		b.MovImm(3, 0x100000+mem.Word(id)*0x10000) // private region
		b.MovImm(10, rounds)
		loop := b.Here()
		b.Atomic(isa.FnFetchAdd, 4, 1, 0, 2) // counter++
		b.Load(5, 3, 0)                      // private load
		b.ALUI(isa.FnAdd, 5, 5, 7)
		b.Store(3, 0, 5)
		b.AddI(3, 3, 64) // next line
		b.ALUI(isa.FnSub, 10, 10, 1)
		b.BranchI(isa.FnNE, 10, 0, loop)
		b.Halt()
		programs[id] = b.Program()
	}

	cfg := wbsim.SmallConfig(cores, wbsim.OoOWB)
	sys := wbsim.NewSystem(cfg, programs)
	cycles, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	res := sys.Collect()
	fmt.Printf("ran %d cores for %d cycles\n", cores, cycles)
	fmt.Printf("committed %d instructions (%d loads, %d stores)\n",
		res.Committed, res.CommittedLoads, res.CommittedStores)
	fmt.Printf("final counter value: %d (want %d)\n",
		sys.ReadWord(counter), cores*rounds)
	fmt.Printf("M-speculative loads committed out of order: %d\n", res.MSpecCommits)
	fmt.Printf("consistency squashes: %d (WritersBlock hides reordering instead)\n",
		res.SquashInv+res.SquashEvict)
}
