// Spinlock example: a producer publishes generations of data guarded by
// a flag while consumers spin — the scenario of Section 3.4, where reads
// racing a blocked write must receive uncacheable tear-off copies so the
// write is not delayed forever (livelock freedom).
//
// The example runs the same workload over the base protocol and over
// WritersBlock and prints the protocol-level events: blocked writes,
// Nacks, tear-off reads, and the consistency squashes that WritersBlock
// eliminates.
package main

import (
	"fmt"
	"log"

	"wbsim"
)

func main() {
	w, ok := wbsim.GetWorkload("spinflag")
	if !ok {
		log.Fatal("spinflag workload missing")
	}

	for _, v := range []wbsim.Variant{wbsim.OoOBase, wbsim.OoOWB} {
		cfg := wbsim.SmallConfig(4, v)
		_, res, err := wbsim.RunWorkload(w, cfg, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", v)
		fmt.Printf("cycles                   %d\n", res.Cycles)
		fmt.Printf("committed                %d\n", res.Committed)
		fmt.Printf("writes blocked by locks  %d\n", res.BlockedWrites)
		fmt.Printf("nacks / delayed acks     %d / %d\n", res.Nacks, res.DelayedAcks)
		fmt.Printf("uncacheable tear-offs    %d (retried by unordered loads: %d)\n",
			res.UncacheableReads, res.TearoffRetries)
		fmt.Printf("consistency squashes     %d\n\n", res.SquashInv+res.SquashEvict)
	}
	fmt.Println("WritersBlock replaces squash-and-re-execute with short write delays;")
	fmt.Println("spinning readers keep reading the old value from tear-off copies, so")
	fmt.Println("the blocked write is never starved (no livelock).")
}
