// Package wbsim is a cycle-driven multicore simulator reproducing
// "Non-Speculative Load-Load Reordering in TSO" (Ros, Carlson, Alipour,
// Kaxiras — ISCA 2017): out-of-order cores with TSO, a MESI directory
// protocol over a 2D-mesh NoC, and the paper's WritersBlock coherence
// extension that hides load-load reordering from other cores so that
// M-speculative loads can be irrevocably bound (committed out of order)
// without squash-and-re-execute.
//
// The root package is a thin facade over the implementation packages:
//
//   - internal/core       — machine assembly, Table 6 configurations
//   - internal/cpu        — the out-of-order core (ROB/LQ/SQ/SB/LDT)
//   - internal/coherence  — directory + private caches + WritersBlock
//   - internal/network    — the 2D-mesh interconnect
//   - internal/isa        — the small register ISA and program builder
//   - internal/workload   — SPLASH-3/PARSEC analog kernels
//   - internal/litmus     — TSO litmus framework
//   - internal/experiments— Figure 8/9/10 regeneration
//
// Quick start:
//
//	cfg := wbsim.DefaultConfig(wbsim.SLM, wbsim.OoOWB)
//	w, _ := wbsim.GetWorkload("fft")
//	sys, res, err := wbsim.RunWorkload(w, cfg, 1)
//	_ = sys; _ = res; _ = err
package wbsim

import (
	"wbsim/internal/core"
	"wbsim/internal/isa"
	"wbsim/internal/litmus"
	"wbsim/internal/workload"
)

// Machine configuration (see internal/core).
type (
	// Config describes a whole machine (cores, class, variant, memory
	// system, network, seed).
	Config = core.Config
	// Class is a core aggressiveness class from Table 6.
	Class = core.Class
	// Variant selects the commit policy + coherence mode pair.
	Variant = core.Variant
	// System is an assembled machine.
	System = core.System
	// Results are the aggregate statistics of a finished run.
	Results = core.Results
)

// Core classes (Table 6).
const (
	SLM = core.SLM
	NHM = core.NHM
	HSW = core.HSW
)

// System variants, derived from the protocol registry (commit policy ×
// registered coherence protocol). Descriptions live on the registry
// entries; VariantHelp renders them. The constants re-export the
// pairings referenced directly by docs and callers.
const (
	InOrderBase   = core.InOrderBase
	InOrderWB     = core.InOrderWB
	OoOBase       = core.OoOBase
	OoOWB         = core.OoOWB
	InOrderTardis = core.InOrderTardis
	OoOTardis     = core.OoOTardis
	OoOUnsafe     = core.OoOUnsafe
)

// Variants lists the paper's evaluated variants; SoundVariants and
// AllVariants expose the full registry-derived matrix.
var (
	Variants = core.Variants
)

// SoundVariants returns every TSO-preserving variant derived from the
// protocol registry.
func SoundVariants() []Variant { return core.SoundVariants() }

// AllVariants returns every derived variant including the unsound demo.
func AllVariants() []Variant { return core.AllVariants() }

// VariantHelp renders one descriptive line per derived variant.
func VariantHelp() string { return core.VariantHelp() }

// DefaultConfig returns the paper's 16-core machine for a class/variant.
func DefaultConfig(class Class, variant Variant) Config {
	return core.DefaultConfig(class, variant)
}

// SmallConfig returns a downsized machine for fast experimentation.
func SmallConfig(cores int, variant Variant) Config {
	return core.SmallConfig(cores, variant)
}

// NewSystem assembles a machine running one program per core.
func NewSystem(cfg Config, programs []*isa.Program) *System {
	return core.NewSystem(cfg, programs)
}

// Workloads.
type Workload = workload.Workload

// GetWorkload looks up a benchmark by name (see WorkloadNames).
func GetWorkload(name string) (Workload, bool) { return workload.Get(name) }

// WorkloadNames lists every registered benchmark.
func WorkloadNames() []string { return workload.Names() }

// EvaluationWorkloads returns the paper's 20-benchmark evaluation set.
func EvaluationWorkloads() []Workload { return workload.Evaluation() }

// RunWorkload builds and runs a workload to completion.
func RunWorkload(w Workload, cfg Config, scale int) (*System, Results, error) {
	return workload.Run(w, cfg, scale)
}

// Litmus testing.
type (
	// LitmusTest is one litmus test (program shape + forbidden outcomes).
	LitmusTest = litmus.Test
	// LitmusResult aggregates outcomes across seeds.
	LitmusResult = litmus.Result
	// LitmusOptions control a litmus campaign.
	LitmusOptions = litmus.Options
)

// LitmusSuite returns the full TSO litmus suite.
func LitmusSuite() []LitmusTest { return litmus.Suite() }

// RunLitmus executes a litmus test under a system variant.
func RunLitmus(t LitmusTest, v Variant, opts LitmusOptions) LitmusResult {
	return litmus.Run(t, v, opts)
}

// NewProgramBuilder starts a new program in the simulator's ISA.
func NewProgramBuilder(name string) *isa.Builder { return isa.NewBuilder(name) }
