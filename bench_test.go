package wbsim_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation. Run with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Each benchmark executes the corresponding experiment once per
// iteration, reports the headline aggregate through b.ReportMetric, and
// logs the full figure table (visible with -v).

import (
	"fmt"
	"testing"

	"wbsim/internal/core"
	"wbsim/internal/experiments"
	"wbsim/internal/litmus"
	"wbsim/internal/stats"
	"wbsim/internal/workload"
)

func benchOptions() experiments.Options {
	return experiments.Options{Cores: 16, Scale: 2, Seed: 1}
}

// BenchmarkTable2Litmus regenerates the Table 1/Table 2 result: the
// forbidden {new, old} outcome never appears under any sound variant of
// the hit-under-miss message-passing test.
func BenchmarkTable2Litmus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		test := litmus.MPHitUnderMiss()
		opts := litmus.Options{Seeds: 40, Jitter: 24}
		violations := 0
		runs := 0
		for _, v := range core.Variants {
			res := litmus.Run(test, v, opts)
			violations += res.Violations
			runs += res.Runs
		}
		if violations != 0 {
			b.Fatalf("TSO violations under sound variants: %d", violations)
		}
		b.ReportMetric(float64(runs), "litmus-runs/op")
	}
}

// BenchmarkFig8BlockedWrites regenerates Figure 8 (top): write requests
// blocked per kilo-store across benchmarks and core classes.
func BenchmarkFig8BlockedWrites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(maxCol(t, 2), "max-blocked-writes/kstore")
	}
}

// BenchmarkFig8UncacheableReads regenerates Figure 8 (bottom):
// uncacheable tear-off reads per kilo-load.
func BenchmarkFig8UncacheableReads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(maxCol(t, 3), "max-uncacheable-reads/kload")
	}
}

// BenchmarkFig9ExecutionTime regenerates Figure 9 (top): execution time
// of WritersBlock coherence normalized to the base protocol.
func BenchmarkFig9ExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(lastRowCol(t, 1), "geomean-exec-time")
	}
}

// BenchmarkFig9Traffic regenerates Figure 9 (bottom): network traffic of
// WritersBlock coherence normalized to the base protocol.
func BenchmarkFig9Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(lastRowCol(t, 2), "geomean-traffic")
	}
}

// BenchmarkFig10Stalls regenerates Figure 10 (top): the commit-stall
// breakdown (ROB/LQ/SQ full) for the three commit schemes.
func BenchmarkFig10Stalls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig10Stalls(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(float64(t.NumRows()), "rows")
	}
}

// BenchmarkFig10ExecutionTime regenerates Figure 10 (bottom): normalized
// execution time of OoO commit and OoO+WritersBlock vs in-order commit.
// The paper reports 15.4% avg / 41.9% max improvement over in-order and
// 10.2% avg / 28.3% max over safe OoO commit.
func BenchmarkFig10ExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10Time(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", r.Table)
		b.ReportMetric(r.AvgVsInOrder, "avg-%-vs-inorder")
		b.ReportMetric(r.MaxVsInOrder, "max-%-vs-inorder")
		b.ReportMetric(r.AvgVsOoO, "avg-%-vs-ooo")
		b.ReportMetric(r.MaxVsOoO, "max-%-vs-ooo")
	}
}

// BenchmarkSquashElimination regenerates the Section 1 motivation:
// consistency squashes disappear under WritersBlock.
func BenchmarkSquashElimination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Squashes(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(maxCol(t, 2), "max-wb-squashes/Minstr")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// cycles per second) on a representative 16-core run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := workload.Get("fft")
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(core.SLM, core.OoOWB)
		_, res, err := workload.Run(w, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		cycles += uint64(res.Cycles)
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
}

// maxCol returns the maximum numeric value in column c.
func maxCol(t *stats.Table, c int) float64 {
	m := 0.0
	for i := 0; i < t.NumRows(); i++ {
		var v float64
		if _, err := sscanFloat(t.Row(i)[c], &v); err == nil && v > m {
			m = v
		}
	}
	return m
}

// lastRowCol returns the numeric value at the last row's column c.
func lastRowCol(t *stats.Table, c int) float64 {
	if t.NumRows() == 0 {
		return 0
	}
	var v float64
	sscanFloat(t.Row(t.NumRows() - 1)[c], &v)
	return v
}

func sscanFloat(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

// BenchmarkAblationEvictionPolicy reproduces the Section 3.8 comparison:
// silent shared-line evictions vs non-silent ones (the paper cites ~9.6%
// lower traffic for silent).
func BenchmarkAblationEvictionPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblateEvictionPolicy(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(lastRowCol(t, 1), "nonsilent-traffic-geomean")
	}
}

// BenchmarkAblationLDTSize sweeps the Lockdown Table size.
func BenchmarkAblationLDTSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblateLDTSize(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(float64(t.NumRows()), "rows")
	}
}

// BenchmarkAblationReservedMSHRs sweeps the SoS-reserved MSHR count.
func BenchmarkAblationReservedMSHRs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblateReservedMSHRs(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(float64(t.NumRows()), "rows")
	}
}

// BenchmarkClassSweep extends Figure 10 across SLM/NHM/HSW.
func BenchmarkClassSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.ClassSweep(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", t)
		b.ReportMetric(float64(t.NumRows()), "rows")
	}
}
